// Tests for the N-site mesh extension: MeshSyncPeer unit tests and full
// 4-player mesh experiments.
#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/common/telemetry.h"
#include "src/core/mesh.h"
#include "src/testbed/mesh_experiment.h"

namespace rtct::core {
namespace {

SyncConfig cfgm() { return SyncConfig{}; }

// ---- MeshSyncPeer unit tests --------------------------------------------------

TEST(MeshPeerTest, FourSiteLockstepOverInstantChannels) {
  MeshSyncPeer peers[4] = {MeshSyncPeer(0, 4, cfgm()), MeshSyncPeer(1, 4, cfgm()),
                           MeshSyncPeer(2, 4, cfgm()), MeshSyncPeer(3, 4, cfgm())};
  for (FrameNo f = 0; f < 30; ++f) {
    for (SiteId s = 0; s < 4; ++s) {
      peers[s].submit_local(
          f, pack_player_bits_n(static_cast<std::uint8_t>((f + s) & 0xF), s, 4));
    }
    // Full-mesh exchange.
    for (SiteId from = 0; from < 4; ++from) {
      for (SiteId to = 0; to < 4; ++to) {
        if (from == to) continue;
        if (auto m = peers[from].make_message(to, f)) peers[to].ingest(*m, f);
      }
    }
    InputWord expect = 0;
    if (f >= 6) {
      for (SiteId s = 0; s < 4; ++s) {
        expect = merge_site_bits_n(
            expect, pack_player_bits_n(static_cast<std::uint8_t>((f - 6 + s) & 0xF), s, 4),
            s, 4);
      }
    }
    for (SiteId s = 0; s < 4; ++s) {
      ASSERT_TRUE(peers[s].ready()) << "site " << s << " frame " << f;
      ASSERT_EQ(peers[s].pop(), expect) << "site " << s << " frame " << f;
    }
  }
}

TEST(MeshPeerTest, NotReadyUntilEveryPeerArrives) {
  MeshSyncPeer a(0, 4, cfgm());
  MeshSyncPeer others[3] = {MeshSyncPeer(1, 4, cfgm()), MeshSyncPeer(2, 4, cfgm()),
                            MeshSyncPeer(3, 4, cfgm())};
  for (FrameNo f = 0; f < 7; ++f) {
    a.submit_local(f, 0);
    for (auto& o : others) o.submit_local(f, 0);
  }
  for (FrameNo f = 0; f < 6; ++f) (void)a.pop();
  EXPECT_FALSE(a.ready());
  // Two of three peers deliver: still not ready.
  for (int k = 0; k < 2; ++k) {
    if (auto m = others[k].make_message(0, 0)) a.ingest(*m, 0);
  }
  EXPECT_FALSE(a.ready());
  EXPECT_EQ(a.straggler(), 3);  // the silent site is identified
  if (auto m = others[2].make_message(0, 0)) a.ingest(*m, 0);
  EXPECT_TRUE(a.ready());
}

TEST(MeshPeerTest, ReorderedGappedWindowDoesNotAdvanceWatermark) {
  MeshSyncPeer a(0, 4, cfgm());
  // Initial contiguity watermark = buf_frames - 1 = 5 for every site.
  ASSERT_EQ(a.last_rcv_frame(1), 5);

  // A message whose input window starts above a loss-created gap (frames
  // 6-7 dropped, 8-9 arrive — go-back-N retransmission windows slide, so
  // a reordered older message can start past the gap). The watermark must
  // NOT jump to last_frame(): frames 6-7 are still missing, and ready()
  // would otherwise deliver an incomplete merged input and desync the
  // replicas.
  SyncMsg gapped;
  gapped.site = 1;
  gapped.ack_frame = 5;
  gapped.first_frame = 8;
  gapped.inputs = {0x1, 0x2};
  a.ingest(gapped, 0);
  EXPECT_EQ(a.last_rcv_frame(1), 5);

  // The retransmission that fills the gap rolls the watermark over the
  // whole buffered run in one step.
  SyncMsg fill;
  fill.site = 1;
  fill.ack_frame = 5;
  fill.first_frame = 6;
  fill.inputs = {0x3, 0x4};
  a.ingest(fill, 0);
  EXPECT_EQ(a.last_rcv_frame(1), 9);
}

TEST(MeshPeerTest, GappedMasterWindowDoesNotMarkMasterSeen) {
  // Same hazard on the Algorithm-4 side: a gapped window from the master
  // must not refresh master_advance_time_/seen_master_ either, or the
  // slave's rate sync would extrapolate from a frame it never received.
  MeshSyncPeer slave(1, 4, cfgm());
  SyncMsg gapped;
  gapped.site = 0;  // master
  gapped.ack_frame = 5;
  gapped.first_frame = 9;
  gapped.inputs = {0x7};
  slave.ingest(gapped, milliseconds(100));
  EXPECT_FALSE(slave.master_obs().valid);
  EXPECT_EQ(slave.last_rcv_frame(0), 5);

  SyncMsg fill;
  fill.site = 0;
  fill.ack_frame = 5;
  fill.first_frame = 6;
  fill.inputs = {0x1, 0x2, 0x3};
  slave.ingest(fill, milliseconds(120));
  EXPECT_TRUE(slave.master_obs().valid);
  EXPECT_EQ(slave.last_rcv_frame(0), 9);
  EXPECT_EQ(slave.master_obs().rcv_time, milliseconds(120));
}

TEST(MeshPeerTest, ExportMetricsPublishesSyncAndPeerGauges) {
  MeshSyncPeer a(0, 4, cfgm());
  for (FrameNo f = 0; f < 3; ++f) a.submit_local(f, 0);
  SyncMsg m;
  m.site = 2;
  m.ack_frame = 5;
  m.first_frame = 6;
  m.inputs = {0x1};
  a.ingest(m, 0);

  MetricsRegistry reg;
  a.export_metrics(reg);
  EXPECT_EQ(reg.value("sync.messages_ingested"), 1.0);
  EXPECT_EQ(reg.value("mesh.num_sites"), 4.0);
  EXPECT_EQ(reg.value("mesh.peer.2.last_rcv_frame"), 6.0);
  EXPECT_TRUE(reg.value("mesh.peer.1.rtt_ms").has_value());
  EXPECT_FALSE(reg.value("mesh.peer.0.last_rcv_frame").has_value());  // self
}

TEST(MeshPeerTest, PerPeerAcksTrimIndependently) {
  MeshSyncPeer a(0, 4, cfgm());
  for (FrameNo f = 0; f < 5; ++f) a.submit_local(f, 0);
  // Peer 1 acks everything; peers 2,3 ack nothing: the window to peer 1
  // empties, the others still get the full resend.
  SyncMsg ack;
  ack.site = 1;
  ack.ack_frame = 10;
  ack.first_frame = 6;  // no inputs
  a.ingest(ack, 0);
  EXPECT_FALSE(a.make_message(1, 1).has_value());  // nothing new for peer 1
  const auto m2 = a.make_message(2, 1);
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m2->inputs.size(), 5u);
}

TEST(MeshPeerTest, SelfAndOutOfRangeMessagesDropped) {
  MeshSyncPeer a(0, 4, cfgm());
  SyncMsg bogus;
  bogus.site = 0;
  a.ingest(bogus, 0);
  bogus.site = 7;
  a.ingest(bogus, 0);
  EXPECT_EQ(a.stats().stale_messages, 2u);
  EXPECT_FALSE(a.make_message(0, 0).has_value());  // no message to self
  EXPECT_FALSE(a.make_message(9, 0).has_value());
}

TEST(MeshPeerTest, TwoSiteMeshMatchesPairBehaviour) {
  // A 2-site mesh is the paper's algorithm; check the basic local-lag
  // delivery semantics match SyncPeer's.
  MeshSyncPeer a(0, 2, cfgm());
  MeshSyncPeer b(1, 2, cfgm());
  for (FrameNo f = 0; f < 12; ++f) {
    a.submit_local(f, make_input(static_cast<std::uint8_t>(f + 1), 0));
    b.submit_local(f, make_input(0, static_cast<std::uint8_t>(f + 51)));
    if (auto m = a.make_message(1, f)) b.ingest(*m, f);
    if (auto m = b.make_message(0, f)) a.ingest(*m, f);
    ASSERT_TRUE(a.ready());
    ASSERT_TRUE(b.ready());
    const InputWord ia = a.pop();
    ASSERT_EQ(ia, b.pop());
    if (f >= 6) {
      ASSERT_EQ(player_byte(ia, 0), f - 6 + 1);
      ASSERT_EQ(player_byte(ia, 1), f - 6 + 51);
    }
  }
}

TEST(MeshPeerTest, MasterObsOnlyValidForSlaves) {
  MeshSyncPeer master(0, 4, cfgm());
  MeshSyncPeer slave(2, 4, cfgm());
  EXPECT_FALSE(master.master_obs().valid);
  EXPECT_FALSE(slave.master_obs().valid);
  master.submit_local(0, 0);
  if (auto m = master.make_message(2, 0)) slave.ingest(*m, milliseconds(42));
  EXPECT_TRUE(slave.master_obs().valid);
  EXPECT_EQ(slave.master_obs().rcv_time, milliseconds(42));
  EXPECT_EQ(slave.master_obs().last_rcv_frame, 6);
}

// ---- property: 4-site lockstep under a hostile mesh -----------------------------

TEST(MeshPeerTest, LockstepInvariantUnderLossyMesh) {
  Rng rng(99);
  constexpr int kN = 4;
  constexpr FrameNo kFrames = 60;
  std::vector<MeshSyncPeer> peers;
  for (SiteId s = 0; s < kN; ++s) peers.emplace_back(s, kN, cfgm());

  struct Packet {
    Time at;
    SiteId to;
    SyncMsg msg;
  };
  std::vector<Packet> inflight;
  std::vector<std::vector<InputWord>> delivered(kN);
  FrameNo submitted[kN] = {};
  Time next_flush[kN] = {};
  Time now = 0;
  bool dropped_last = false;

  while (now < seconds(60)) {
    now += milliseconds(1);
    // Deliver due packets.
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (it->at <= now) {
        peers[it->to].ingest(it->msg, now);
        it = inflight.erase(it);
      } else {
        ++it;
      }
    }
    bool all_done = true;
    for (SiteId s = 0; s < kN; ++s) {
      auto& p = peers[s];
      if (submitted[s] < kFrames && p.pointer() == submitted[s]) {
        p.submit_local(submitted[s], pack_player_bits_n(
                                         static_cast<std::uint8_t>(rng.next_u64() & 0xF), s, kN));
        ++submitted[s];
      }
      if (delivered[s].size() < static_cast<std::size_t>(kFrames) && p.ready() &&
          p.pointer() < submitted[s]) {
        delivered[s].push_back(p.pop());
      }
      if (now >= next_flush[s]) {
        next_flush[s] = now + milliseconds(20);
        for (SiteId to = 0; to < kN; ++to) {
          if (to == s) continue;
          if (auto m = p.make_message(to, now)) {
            const bool drop = rng.bernoulli(0.2) && !dropped_last;
            dropped_last = drop;
            if (!drop) {
              inflight.push_back({now + milliseconds(rng.uniform(5, 60)), to, *m});
            }
          }
        }
      }
      all_done = all_done && delivered[s].size() == static_cast<std::size_t>(kFrames);
    }
    if (all_done) break;
  }

  for (SiteId s = 0; s < kN; ++s) {
    ASSERT_EQ(delivered[s].size(), static_cast<std::size_t>(kFrames)) << "site " << s
                                                                      << " deadlocked";
  }
  for (FrameNo f = 0; f < kFrames; ++f) {
    for (SiteId s = 1; s < kN; ++s) {
      ASSERT_EQ(delivered[0][f], delivered[s][f]) << "frame " << f << " site " << s;
    }
  }
}

}  // namespace
}  // namespace rtct::core

// ---- full mesh experiments (integration) ------------------------------------------

namespace rtct::testbed {
namespace {

TEST(MeshExperimentTest, FourPlayersConvergeAtFullSpeed) {
  MeshExperimentConfig cfg;
  cfg.frames = 400;
  cfg.net = net::NetemConfig::for_rtt(milliseconds(50));
  const auto r = run_mesh_experiment(cfg);
  ASSERT_EQ(r.sites.size(), 4u);
  EXPECT_TRUE(r.converged());
  for (int s = 0; s < 4; ++s) {
    EXPECT_NEAR(r.avg_frame_time_ms(s), 16.667, 0.4) << "site " << s;
  }
  EXPECT_LT(r.worst_synchrony_ms(), 15.0);
}

TEST(MeshExperimentTest, SurvivesLossAndJitterAcrossTheMesh) {
  MeshExperimentConfig cfg;
  cfg.frames = 300;
  cfg.net = net::NetemConfig::for_rtt(milliseconds(60));
  cfg.net.loss = 0.05;
  cfg.net.jitter = milliseconds(4);
  const auto r = run_mesh_experiment(cfg);
  EXPECT_TRUE(r.converged());
}

TEST(MeshExperimentTest, SlowestLinkGovernsEveryone) {
  // One site behind a 300 ms-RTT path: lockstep must throttle all four.
  MeshExperimentConfig cfg;
  cfg.frames = 300;
  cfg.net = net::NetemConfig::for_rtt(milliseconds(300));
  const auto r = run_mesh_experiment(cfg);
  ASSERT_TRUE(r.converged());
  for (int s = 0; s < 4; ++s) EXPECT_GT(r.avg_frame_time_ms(s), 18.0) << "site " << s;
}

TEST(MeshExperimentTest, StaggeredBootsAbsorbed) {
  MeshExperimentConfig cfg;
  cfg.frames = 400;
  cfg.net = net::NetemConfig::for_rtt(milliseconds(40));
  cfg.boot_stagger = milliseconds(150);  // site 3 boots 450 ms late
  const auto r = run_mesh_experiment(cfg);
  EXPECT_TRUE(r.converged());
}

TEST(MeshExperimentTest, TwoSiteMeshMatchesPairHarnessShape) {
  MeshExperimentConfig cfg;
  cfg.num_sites = 2;
  cfg.game = "duel";
  cfg.frames = 300;
  cfg.net = net::NetemConfig::for_rtt(milliseconds(60));
  const auto r = run_mesh_experiment(cfg);
  ASSERT_TRUE(r.converged());
  EXPECT_NEAR(r.avg_frame_time_ms(0), 16.667, 0.2);
}

TEST(MeshExperimentTest, InvalidConfigsRejected) {
  MeshExperimentConfig cfg;
  cfg.num_sites = 3;  // does not divide 16
  EXPECT_FALSE(run_mesh_experiment(cfg).converged());
  cfg.num_sites = 4;
  cfg.game = "no-such-game";
  EXPECT_FALSE(run_mesh_experiment(cfg).converged());
}

}  // namespace
}  // namespace rtct::testbed
