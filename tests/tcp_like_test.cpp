// Unit tests for the TCP-like reliable in-order baseline transport.
#include <gtest/gtest.h>

#include <vector>

#include "src/baseline/tcp_like.h"

namespace rtct::baseline {
namespace {

net::Payload payload_of(std::uint8_t tag) { return net::Payload{tag, 0x55}; }

struct Fixture {
  sim::Simulator sim;
  net::SimDuplexLink link;
  TcpLikeEndpoint a;
  TcpLikeEndpoint b;

  explicit Fixture(net::NetemConfig cfg, Dur rto = milliseconds(60), std::uint64_t seed = 1)
      : link(sim, cfg, seed), a(sim, link.a(), rto), b(sim, link.b(), rto) {}
};

TEST(TcpLikeTest, DeliversInOrderOnPerfectLink) {
  Fixture f(net::NetemConfig::for_rtt(milliseconds(20)));
  for (std::uint8_t i = 0; i < 20; ++i) f.a.send(payload_of(i));
  f.sim.run_until(seconds(2));
  for (std::uint8_t i = 0; i < 20; ++i) {
    const auto got = f.b.try_recv();
    ASSERT_TRUE(got.has_value()) << "missing payload " << int(i);
    EXPECT_EQ((*got)[0], i);
  }
  EXPECT_FALSE(f.b.try_recv().has_value());
}

TEST(TcpLikeTest, RecoversFromHeavyLoss) {
  net::NetemConfig lossy = net::NetemConfig::for_rtt(milliseconds(20));
  lossy.loss = 0.3;
  Fixture f(lossy, milliseconds(50), 7);
  for (std::uint8_t i = 0; i < 30; ++i) f.a.send(payload_of(i));
  f.sim.run_until(seconds(20));
  for (std::uint8_t i = 0; i < 30; ++i) {
    const auto got = f.b.try_recv();
    ASSERT_TRUE(got.has_value()) << "lost payload " << int(i) << " never recovered";
    EXPECT_EQ((*got)[0], i);
  }
  EXPECT_GT(f.a.stats().retransmissions, 0u);
}

TEST(TcpLikeTest, ExactlyOnceUnderDuplication) {
  net::NetemConfig dup = net::NetemConfig::for_rtt(milliseconds(20));
  dup.duplicate = 0.5;
  Fixture f(dup, milliseconds(50), 9);
  for (std::uint8_t i = 0; i < 20; ++i) f.a.send(payload_of(i));
  f.sim.run_until(seconds(5));
  int delivered = 0;
  while (f.b.try_recv().has_value()) ++delivered;
  EXPECT_EQ(delivered, 20);
  EXPECT_GT(f.b.stats().duplicate_segments, 0u);
}

TEST(TcpLikeTest, ReorderBuffersUntilGapFills) {
  net::NetemConfig weird = net::NetemConfig::for_rtt(milliseconds(20));
  weird.reorder = 0.4;
  weird.reorder_extra = milliseconds(25);
  Fixture f(weird, milliseconds(80), 11);
  for (std::uint8_t i = 0; i < 25; ++i) f.a.send(payload_of(i));
  f.sim.run_until(seconds(10));
  for (std::uint8_t i = 0; i < 25; ++i) {
    const auto got = f.b.try_recv();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ((*got)[0], i) << "order violated";
  }
}

TEST(TcpLikeTest, BasicDeliveryTimingMatchesPathDelay) {
  Fixture f(net::NetemConfig::for_rtt(milliseconds(20)), milliseconds(100));
  f.a.send(payload_of(0));
  f.sim.run_until(milliseconds(5));
  EXPECT_FALSE(f.b.try_recv().has_value());  // still in flight (10 ms path)
  f.sim.run_until(milliseconds(15));
  EXPECT_TRUE(f.b.try_recv().has_value());
}

TEST(TcpLikeTest, HeadOfLineBlockingDelaysLaterArrivals) {
  // Find a seed whose first Bernoulli(loss) draw drops exactly the first
  // segment and keeps the second; then payload 1 — although it arrives on
  // time — must not be deliverable until payload 0's RTO retransmission.
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s < 2000 && seed == 0; ++s) {
    Rng probe(s);
    Rng dir = probe.fork();  // SimDuplexLink gives a->b the first fork
    bool want = dir.bernoulli(0.5);  // first draw: drop segment 0
    for (int k = 0; k < 5 && want; ++k) {
      want = !dir.bernoulli(0.5);  // next draws: keep everything else
    }
    if (want) seed = s;
  }
  ASSERT_NE(seed, 0u);

  net::NetemConfig cfg = net::NetemConfig::for_rtt(milliseconds(20));
  cfg.loss = 0.5;
  Fixture f(cfg, milliseconds(60), seed);
  f.a.send(payload_of(0));  // dropped by the link
  f.a.send(payload_of(1));  // arrives at ~10 ms
  f.sim.run_until(milliseconds(30));
  EXPECT_FALSE(f.b.try_recv().has_value()) << "in-order transport delivered past a gap";
  EXPECT_EQ(f.b.stats().out_of_order_buffered, 1u);
  f.sim.run_until(milliseconds(300));  // let the RTO repair the gap
  const auto first = f.b.try_recv();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((*first)[0], 0);
  EXPECT_EQ((*f.b.try_recv())[0], 1);
}

TEST(TcpLikeTest, DeliverableTriggerFires) {
  Fixture f(net::NetemConfig::for_rtt(milliseconds(20)));
  bool woken = false;
  struct Fn {
    static sim::Task run(TcpLikeEndpoint& ep, bool& flag) {
      co_await ep.deliverable_trigger().wait();
      flag = ep.try_recv().has_value();
    }
  };
  f.sim.spawn(Fn::run(f.b, woken));
  f.a.send(payload_of(1));
  f.sim.run_until(seconds(1));
  EXPECT_TRUE(woken);
}

TEST(TcpLikeTest, NoSpuriousRetransmitWhenAckedInTime) {
  Fixture f(net::NetemConfig::for_rtt(milliseconds(20)), milliseconds(100));
  f.a.send(payload_of(1));
  f.sim.run_until(seconds(1));
  EXPECT_EQ(f.a.stats().retransmissions, 0u);
  EXPECT_EQ(f.a.stats().segments_sent, 1u);
}

}  // namespace
}  // namespace rtct::baseline
