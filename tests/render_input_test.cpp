// Tests for the ASCII renderer and the synthetic input sources.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/input_source.h"
#include "src/emu/render_text.h"

namespace rtct {
namespace {

// ---- render_ascii -----------------------------------------------------------

std::vector<std::uint8_t> blank_fb(int cols = 64, int rows = 48) {
  return std::vector<std::uint8_t>(static_cast<std::size_t>(cols * rows), 0);
}

TEST(RenderTest, BlankScreenIsSpacesAndNewlines) {
  const auto fb = blank_fb();
  const auto out = emu::render_ascii(fb, 64, 48);
  EXPECT_EQ(out.size(), (64u + 1) * 24);  // rows halved, newline per row
  for (char ch : out) EXPECT_TRUE(ch == ' ' || ch == '\n');
}

TEST(RenderTest, PixelAppearsAtRightSpot) {
  auto fb = blank_fb();
  fb[5 * 64 + 10] = 9;  // row 5 -> output row 2, column 10
  const auto out = emu::render_ascii(fb, 64, 48);
  const std::size_t idx = 2 * 65 + 10;
  EXPECT_EQ(out[idx], '@');  // palette 9 = brightest ramp char
}

TEST(RenderTest, BrighterOfThePairWins) {
  auto fb = blank_fb();
  fb[0] = 2;        // row 0, col 0
  fb[64] = 7;       // row 1, col 0 — same output cell, brighter
  const auto out = emu::render_ascii(fb, 64, 48);
  EXPECT_EQ(out[0], '#');  // ramp[7]
}

TEST(RenderTest, OutOfRangePaletteClamps) {
  auto fb = blank_fb();
  fb[0] = 255;
  const auto out = emu::render_ascii(fb, 64, 48);
  EXPECT_EQ(out[0], '@');
}

TEST(RenderTest, PairPutsGutterBetweenScreens) {
  auto left = blank_fb();
  auto right = blank_fb();
  left[0] = 9;
  right[0] = 9;
  const auto out = emu::render_ascii_pair(left, right, 64, 48);
  const auto first_line = out.substr(0, out.find('\n'));
  EXPECT_EQ(first_line.size(), 64 + 5 + 64u);
  EXPECT_EQ(first_line[0], '@');
  EXPECT_EQ(first_line[64 + 5], '@');
  EXPECT_NE(first_line.find(" | "), std::string::npos);
}

// ---- input sources -----------------------------------------------------------

TEST(InputSourceTest, IdleIsAlwaysZero) {
  core::IdleInput idle;
  for (FrameNo f = 0; f < 100; ++f) EXPECT_EQ(idle.input_for_frame(f), 0);
}

TEST(InputSourceTest, ScriptedReplaysThenGoesQuiet) {
  core::ScriptedInput s({10, 20, 30});
  EXPECT_EQ(s.input_for_frame(0), 10);
  EXPECT_EQ(s.input_for_frame(1), 20);
  EXPECT_EQ(s.input_for_frame(2), 30);
  EXPECT_EQ(s.input_for_frame(3), 0);
  EXPECT_EQ(s.input_for_frame(1000), 0);
}

TEST(InputSourceTest, MasherIsDeterministicPerSeed) {
  core::MasherInput a(42), b(42), c(43);
  bool any_diff = false;
  for (FrameNo f = 0; f < 200; ++f) {
    const auto va = a.input_for_frame(f);
    EXPECT_EQ(va, b.input_for_frame(f));
    any_diff = any_diff || va != c.input_for_frame(f);
  }
  EXPECT_TRUE(any_diff) << "different seeds produced identical mashing";
}

TEST(InputSourceTest, MasherHoldsButtons) {
  core::MasherInput m(7, /*hold_frames=*/10);
  int changes = 0;
  std::uint8_t prev = m.input_for_frame(0);
  for (FrameNo f = 1; f < 100; ++f) {
    const auto v = m.input_for_frame(f);
    changes += v != prev;
    prev = v;
  }
  EXPECT_LE(changes, 10);  // at most one change per hold period
}

TEST(InputSourceTest, MaterializeMatchesLiveSource) {
  core::MasherInput live(99), probe(99);
  const auto script = core::materialize_script(probe, 50);
  ASSERT_EQ(script.size(), 50u);
  for (FrameNo f = 0; f < 50; ++f) EXPECT_EQ(script[f], live.input_for_frame(f));
}

}  // namespace
}  // namespace rtct
