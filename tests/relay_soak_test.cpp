// Relay soak: 64 concurrent relayed two-site lockstep sessions in one
// process, each driven by the sans-IO SyncPeer over real RelayEndpoint
// sockets, with chaos FaultScript loss windows suppressing send flushes
// client-side. Per-session digest chains over the popped merged inputs
// must agree between the two members — logical consistency end-to-end
// through the multiplexed relay, under deterministic adversity.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/chaos/fault_script.h"
#include "src/common/random.h"
#include "src/core/sync_peer.h"
#include "src/core/wire.h"
#include "src/relay/relay_client.h"
#include "src/relay/relay_server.h"

namespace rtct::relay {
namespace {

using core::SyncPeer;

Time elapsed_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

constexpr int kSessions = 64;
constexpr int kFrames = 40;

struct Site {
  std::unique_ptr<RelayEndpoint> ep;
  std::unique_ptr<SyncPeer> peer;
  FrameNo submitted = 0;
  FrameNo popped = 0;
  std::uint64_t digest = 1469598103934665603ull;  // FNV-1a offset basis
};

struct Soaked {
  Site site[2];
  chaos::FaultScript script;
  Rng rng{0};
};

// kLossBurst magnitude is a drop *probability* (fault_script.h), so each
// send inside a window is dropped by a per-session Bernoulli draw — never
// suppressed unconditionally, which would livelock a site whose virtual
// time froze inside a window while it waits on peer input.
bool drop_this_send(const chaos::FaultScript& script, Dur vt, Rng& rng) {
  for (const auto& f : script.faults) {
    if (f.kind != chaos::FaultKind::kLossBurst) continue;
    if (vt >= f.at && vt < f.at + f.duration) return rng.bernoulli(f.magnitude);
  }
  return false;
}

TEST(RelaySoakTest, SixtyFourConcurrentSessionsStayConsistent) {
  RelayConfig cfg;
  cfg.shards = 4;
  RelayServer server(cfg);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  core::SyncConfig sync;
  sync.buf_frames = 4;

  // Establish all 64 sessions (128 lobby handshakes, 128 endpoints).
  std::vector<Soaked> sessions(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    RelayLobby creator("127.0.0.1", server.lobby_port());
    RelayLobby joiner("127.0.0.1", server.lobby_port());
    const auto created = creator.create(static_cast<std::uint64_t>(i));
    ASSERT_TRUE(created.has_value()) << "create " << i << ": " << creator.last_error();
    const auto joined = joiner.join(created->conn);
    ASSERT_TRUE(joined.has_value()) << "join " << i << ": " << joiner.last_error();
    sessions[i].site[0].ep = creator.into_endpoint(*created);
    sessions[i].site[1].ep = joiner.into_endpoint(*joined);
    sessions[i].site[0].peer = std::make_unique<SyncPeer>(0, sync);
    sessions[i].site[1].peer = std::make_unique<SyncPeer>(1, sync);
    sessions[i].script =
        chaos::generate_fault_script(0x50AC0000ull + static_cast<std::uint64_t>(i),
                                     chaos::Topology::kTwoSite);
    sessions[i].rng = Rng(sessions[i].script.seed ^ 0xd10ffull);
  }
  ASSERT_EQ(server.session_count(), static_cast<std::size_t>(kSessions));

  const auto t0 = std::chrono::steady_clock::now();
  const Time deadline = seconds(60);
  std::vector<std::uint8_t> scratch;

  auto all_done = [&] {
    for (const auto& s : sessions) {
      if (s.site[0].popped < kFrames || s.site[1].popped < kFrames) return false;
    }
    return true;
  };

  while (!all_done()) {
    ASSERT_LT(elapsed_since(t0), deadline) << "soak did not converge";
    const Time now = elapsed_since(t0);
    for (auto& s : sessions) {
      for (int sid = 0; sid < 2; ++sid) {
        Site& site = s.site[sid];
        SyncPeer& peer = *site.peer;
        // Keep the input pipeline one frame ahead of delivery. (BufFrame
        // pre-seeds the first frames, so popped starts ahead of submitted;
        // `<=` lets submission catch up instead of deadlocking.)
        if (site.submitted < kFrames && site.submitted <= site.popped) {
          // Deterministic per-site input pattern (what a player "pressed").
          const auto pressed = static_cast<std::uint8_t>(
              (site.submitted * 7 + sid * 13 + s.script.seed) & 0xFF);
          const InputWord local =
              sid == 0 ? make_input(pressed, 0) : make_input(0, pressed);
          peer.submit_local(site.submitted, local);
          ++site.submitted;
        }
        // Chaos: inside a loss-burst window this site's flushes are
        // probabilistically dropped — the peer's go-back-N retransmission
        // must carry the session across.
        const Dur vt = site.popped * frame_period(60);
        if (!drop_this_send(s.script, vt, s.rng)) {
          if (auto msg = peer.make_message(now)) {
            core::encode_message_into(core::Message{*msg}, scratch);
            site.ep->send(scratch);
          }
        }
        while (auto payload = site.ep->try_recv()) {
          const auto msg = core::decode_message(*payload);
          if (!msg) continue;
          if (const auto* sm = std::get_if<core::SyncMsg>(&*msg)) {
            peer.ingest(*sm, now);
          }
        }
        while (peer.ready() && site.popped < kFrames) {
          const InputWord merged = peer.pop();
          // FNV-1a chain over (frame, merged): order- and value-sensitive.
          site.digest ^= (static_cast<std::uint64_t>(site.popped) << 16) |
                         static_cast<std::uint64_t>(merged);
          site.digest *= 1099511628211ull;
          ++site.popped;
        }
      }
    }
    // One core hosts the relay threads AND this driver: yield so the
    // shards can forward what we just offered.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Per-frame digest agreement: identical chains on both members of every
  // session, and distinct inputs across sessions actually flowed (chains
  // differ between sessions because the seed feeds the input pattern).
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_EQ(sessions[i].site[0].digest, sessions[i].site[1].digest)
        << "session " << i << " diverged";
    EXPECT_EQ(sessions[i].site[0].popped, kFrames);
    EXPECT_EQ(sessions[i].site[1].popped, kFrames);
  }
  EXPECT_NE(sessions[0].site[0].digest, sessions[1].site[0].digest);

  const auto stats = server.stats();
  EXPECT_EQ(stats.sessions_created, static_cast<std::uint64_t>(kSessions));
  EXPECT_GT(stats.datagrams_forwarded, static_cast<std::uint64_t>(kSessions * kFrames));
  EXPECT_EQ(stats.dropped_unknown_sender, 0u);
  EXPECT_EQ(stats.dropped_malformed, 0u);
  server.stop();
}

}  // namespace
}  // namespace rtct::relay
