// Tests for the native C++ game — and the proof that the sync stack is
// emulator-agnostic: the full distributed testbed runs a game with no CPU,
// ROM or framebuffer underneath.
#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/games/cellwars.h"
#include "src/testbed/experiment.h"

namespace rtct::games {
namespace {

TEST(CellWarsTest, CursorMovesAndWraps) {
  CellWarsGame g;
  const int x0 = g.cursor_x(0);
  g.step_frame(make_input(kBtnRight, 0));
  EXPECT_EQ(g.cursor_x(0), x0 + 1);
  for (int i = 0; i < CellWarsGame::kCols; ++i) g.step_frame(make_input(kBtnRight, 0));
  EXPECT_EQ(g.cursor_x(0), x0 + 1);  // full wrap
  g.step_frame(make_input(0, kBtnUp));
  EXPECT_EQ(g.cursor_y(1), CellWarsGame::kRows / 2 - 1);
}

TEST(CellWarsTest, FirstClaimAnywhereThenOnlyAdjacent) {
  CellWarsGame g;
  g.step_frame(make_input(kBtnA, 0));  // first claim: allowed anywhere
  EXPECT_EQ(g.score(0), 1);
  // Jump two cells away and try to claim: not adjacent, must fail.
  g.step_frame(make_input(kBtnRight, 0));
  g.step_frame(make_input(kBtnRight, 0));
  g.step_frame(make_input(kBtnA, 0));
  EXPECT_EQ(g.score(0), 1);
  // Step back next to the owned cell: claim succeeds.
  g.step_frame(make_input(kBtnLeft, 0));
  g.step_frame(make_input(kBtnA, 0));
  EXPECT_EQ(g.score(0), 2);
}

TEST(CellWarsTest, BombClearsAndCoolsDown) {
  CellWarsGame g;
  // Build a few cells, then bomb them.
  g.step_frame(make_input(kBtnA, 0));
  g.step_frame(make_input(kBtnRight | kBtnA, 0));
  g.step_frame(make_input(kBtnRight | kBtnA, 0));
  EXPECT_EQ(g.score(0), 3);
  g.step_frame(make_input(kBtnB, 0));  // 3x3 clear around the cursor
  EXPECT_LE(g.score(0), 1);            // leftmost cell may survive (2 away)
  const int after = g.score(0);
  g.step_frame(make_input(kBtnB, 0));  // cooldown: second bomb is a no-op
  EXPECT_EQ(g.score(0), after);
}

TEST(CellWarsTest, ConversionFlipsSurroundedCells) {
  CellWarsGame g;
  // Player 0 builds a connected hook around the empty centre (5,12):
  // claims (4,12), (4,11), (5,11), (6,11), (6,12) — the centre then has 3
  // owned orthogonal neighbours and must flip at the next 16-frame step.
  g.step_frame(make_input(kBtnA, 0));            // claim (4,12)
  g.step_frame(make_input(kBtnUp | kBtnA, 0));   // move+claim (4,11)
  g.step_frame(make_input(kBtnRight | kBtnA, 0));  // (5,11)
  g.step_frame(make_input(kBtnRight | kBtnA, 0));  // (6,11)
  g.step_frame(make_input(kBtnDown | kBtnA, 0));   // (6,12)
  ASSERT_EQ(g.score(0), 5);
  EXPECT_EQ(g.cell(5, 12), 0);  // centre still neutral
  while (g.frame() % 16 != 0) g.step_frame(0);  // reach the conversion step
  EXPECT_EQ(g.cell(5, 12), 1) << "surrounded cell did not convert";
  EXPECT_EQ(g.score(0), 6);
}

TEST(CellWarsTest, DeterministicAndSaveLoadClean) {
  CellWarsGame a, b;
  Rng rng(17);
  std::vector<InputWord> script;
  for (int f = 0; f < 200; ++f) script.push_back(static_cast<InputWord>(rng.next_u64()));
  for (int f = 0; f < 100; ++f) {
    a.step_frame(script[f]);
    b.step_frame(script[f]);
    ASSERT_EQ(a.state_hash(), b.state_hash()) << "frame " << f;
  }
  const auto snap = a.save_state();
  for (int f = 100; f < 200; ++f) a.step_frame(script[f]);
  const auto end_hash = a.state_hash();
  ASSERT_TRUE(a.load_state(snap));
  for (int f = 100; f < 200; ++f) a.step_frame(script[f]);
  EXPECT_EQ(a.state_hash(), end_hash);
}

TEST(CellWarsTest, HostileSnapshotsRejected) {
  CellWarsGame g;
  g.step_frame(0);
  auto snap = g.save_state();
  auto bad = snap;
  bad[0] = 9;  // version
  EXPECT_FALSE(g.load_state(bad));
  bad = snap;
  bad[9 + 5] = 7;  // a grid cell with an impossible owner
  EXPECT_FALSE(g.load_state(bad));
  bad = snap;
  bad.resize(bad.size() - 2);
  EXPECT_FALSE(g.load_state(bad));
}

TEST(CellWarsTest, FullDistributedSessionWithoutAnEmulator) {
  // The headline test: the complete two-site lockstep stack (sync,
  // pacing, session, netem, desync detection) over a game that has no
  // AC16 machine behind it — transparency made concrete.
  testbed::ExperimentConfig cfg;
  cfg.game_factory = make_cellwars;
  cfg.frames = 400;
  cfg.set_rtt(milliseconds(60));
  cfg.net_a_to_b.loss = 0.03;
  const auto r = testbed::run_experiment(cfg);
  EXPECT_TRUE(r.converged());
  EXPECT_EQ(r.first_divergence(), -1);
  EXPECT_NEAR(r.avg_frame_time_ms(0), 16.667, 0.2);
  // Native games render through IRenderableGame like every core: the
  // testbed captures their grid without knowing any machine type.
  EXPECT_EQ(r.site[0].fb_cols, CellWarsGame::kCols);
  EXPECT_EQ(r.site[0].fb_rows, CellWarsGame::kRows);
  EXPECT_EQ(r.site[0].final_framebuffer.size(),
            static_cast<std::size_t>(CellWarsGame::kCols * CellWarsGame::kRows));
  EXPECT_EQ(r.site[0].final_framebuffer, r.site[1].final_framebuffer);
}

TEST(CellWarsTest, ObserversWorkOnNativeGamesToo) {
  testbed::ExperimentConfig cfg;
  cfg.game_factory = make_cellwars;
  cfg.frames = 400;
  cfg.set_rtt(milliseconds(40));
  cfg.observers = 1;
  cfg.observer_join_delay = seconds(2);
  const auto r = testbed::run_experiment(cfg);
  ASSERT_TRUE(r.converged());
  EXPECT_TRUE(r.observers_consistent());  // snapshot+feed replay, no emulator
}

}  // namespace
}  // namespace rtct::games
