// Unit tests for SessionControl — the startup handshake of §3.2.
#include <gtest/gtest.h>

#include "src/core/session.h"

namespace rtct::core {
namespace {

constexpr std::uint64_t kRom = 0xABCDEF;

SyncConfig cfg() { return SyncConfig{}; }

// Delivers a poll()ed message from one side into the other.
bool relay(SessionControl& from, SessionControl& to, Time now) {
  if (auto m = from.poll(now)) {
    to.ingest(*m, now);
    return true;
  }
  return false;
}

TEST(SessionTest, HappyPathHandshake) {
  SessionControl master(0, kRom, cfg());
  SessionControl slave(1, kRom, cfg());

  relay(slave, master, 0);  // slave HELLO reaches the master
  EXPECT_TRUE(master.running());  // master starts on compatible HELLO
  EXPECT_FALSE(slave.running());

  relay(master, slave, milliseconds(10));  // START reaches the slave
  EXPECT_TRUE(slave.running());
  EXPECT_EQ(slave.start_time(), milliseconds(10));
}

TEST(SessionTest, HelloRetransmitsOnInterval) {
  SessionControl s(1, kRom, cfg(), milliseconds(50));
  EXPECT_TRUE(s.poll(0).has_value());
  EXPECT_FALSE(s.poll(milliseconds(10)).has_value());  // not due yet
  EXPECT_TRUE(s.poll(milliseconds(50)).has_value());
  EXPECT_TRUE(s.poll(milliseconds(120)).has_value());
}

TEST(SessionTest, LostStartIsRepairedByReHello) {
  SessionControl master(0, kRom, cfg(), milliseconds(50));
  SessionControl slave(1, kRom, cfg(), milliseconds(50));

  relay(slave, master, 0);
  auto lost_start = master.poll(0);  // START produced...
  ASSERT_TRUE(lost_start.has_value());
  // ...but never delivered (packet lost). Slave re-HELLOs later:
  relay(slave, master, milliseconds(60));
  // Master answers every HELLO with a fresh START even while running.
  auto retry = master.poll(milliseconds(60));
  ASSERT_TRUE(retry.has_value());
  EXPECT_TRUE(std::holds_alternative<StartMsg>(*retry));
  slave.ingest(*retry, milliseconds(61));
  EXPECT_TRUE(slave.running());
}

TEST(SessionTest, SlaveStartsOnSyncTrafficToo) {
  // A slave whose START was lost but who already sees game traffic knows
  // the session is live.
  SessionControl slave(1, kRom, cfg());
  slave.note_sync_traffic(milliseconds(70));
  EXPECT_TRUE(slave.running());
}

TEST(SessionTest, MasterIgnoresSyncTrafficShortcut) {
  SessionControl master(0, kRom, cfg());
  master.note_sync_traffic(0);
  EXPECT_FALSE(master.running());  // master must see a HELLO first
}

TEST(SessionTest, DigestV2NegotiatedWhenBothCapable) {
  // digest_v2 defaults on: two stock sites agree on the v2 fingerprint,
  // the master decides and the START flag carries it to the slave.
  SessionControl master(0, kRom, cfg());
  SessionControl slave(1, kRom, cfg());
  relay(slave, master, 0);
  EXPECT_EQ(master.digest_version(), 2);
  auto start = master.poll(0);
  ASSERT_TRUE(start.has_value());
  EXPECT_NE(std::get<StartMsg>(*start).flags & kFlagStateDigestV2, 0u);
  slave.ingest(*start, milliseconds(1));
  EXPECT_TRUE(slave.running());
  EXPECT_EQ(slave.digest_version(), 2);
}

TEST(SessionTest, DigestFallsBackToV1WithLegacyPeer) {
  // One side without the capability (an older build) drags both to v1 —
  // mixed fingerprint functions would false-positive the desync tripwire.
  SyncConfig legacy = cfg();
  legacy.digest_v2 = false;
  {
    SessionControl master(0, kRom, cfg());
    SessionControl slave(1, kRom, legacy);
    relay(slave, master, 0);
    EXPECT_EQ(master.digest_version(), 1);
    relay(master, slave, milliseconds(1));
    EXPECT_EQ(slave.digest_version(), 1);
  }
  {
    SessionControl master(0, kRom, legacy);
    SessionControl slave(1, kRom, cfg());
    relay(slave, master, 0);
    EXPECT_EQ(master.digest_version(), 1);
    relay(master, slave, milliseconds(1));
    // The START carries no v2 flag, so the capable slave stays on v1.
    EXPECT_EQ(slave.digest_version(), 1);
  }
}

TEST(SessionTest, SyncTrafficShortcutAdoptsPeerCapability) {
  // A slave started by the sync-traffic shortcut saw no START flags; it
  // falls back to the peer's HELLO capability when one was seen.
  SessionControl slave(1, kRom, cfg());
  {
    SyncConfig legacy = cfg();
    legacy.digest_v2 = false;
    SessionControl legacy_master(0, kRom, legacy);
    auto m = legacy_master.poll(0);  // master's own HELLO
    ASSERT_TRUE(m.has_value());
    ASSERT_TRUE(std::holds_alternative<HelloMsg>(*m));
    slave.ingest(*m, 0);
  }
  slave.note_sync_traffic(milliseconds(70));
  EXPECT_TRUE(slave.running());
  EXPECT_EQ(slave.digest_version(), 1);
}

TEST(SessionTest, ChecksumMismatchFails) {
  SessionControl master(0, kRom, cfg());
  SessionControl slave(1, kRom + 1, cfg());  // different game image
  relay(slave, master, 0);
  EXPECT_EQ(master.state(), SessionState::kFailed);
  EXPECT_NE(master.failure_reason().find("image"), std::string::npos);
  EXPECT_FALSE(master.poll(milliseconds(100)).has_value());  // goes silent
}

TEST(SessionTest, VersionMismatchFails) {
  SessionControl master(0, kRom, cfg());
  HelloMsg h;
  h.site = 1;
  h.protocol_version = kProtocolVersion + 1;
  h.rom_checksum = kRom;
  h.cfps = 60;
  h.buf_frames = 6;
  master.ingest(Message{h}, 0);
  EXPECT_EQ(master.state(), SessionState::kFailed);
  EXPECT_NE(master.failure_reason().find("version"), std::string::npos);
}

TEST(SessionTest, SyncParameterMismatchFails) {
  SyncConfig other = cfg();
  other.buf_frames = 3;  // different local lag => different game timing
  SessionControl master(0, kRom, cfg());
  SessionControl slave(1, kRom, other);
  relay(slave, master, 0);
  EXPECT_EQ(master.state(), SessionState::kFailed);
}

TEST(SessionTest, SelfMessagesIgnored) {
  SessionControl master(0, kRom, cfg());
  auto own_hello = master.poll(0);
  ASSERT_TRUE(own_hello.has_value());
  master.ingest(*own_hello, 0);  // reflected back (e.g. broadcast echo)
  EXPECT_FALSE(master.running());
  master.ingest(Message{StartMsg{0}}, 0);  // own START echoed
  EXPECT_FALSE(master.running());
}

TEST(SessionTest, SlaveDoesNotStartOnHello) {
  SessionControl slave(1, kRom, cfg());
  HelloMsg h;
  h.site = 0;
  h.protocol_version = kProtocolVersion;
  h.rom_checksum = kRom;
  h.cfps = 60;
  h.buf_frames = 6;
  slave.ingest(Message{h}, 0);
  EXPECT_FALSE(slave.running());  // needs START, not just HELLO
}

TEST(SessionTest, StartSkewBoundedByOneRelayStep) {
  // The §3.2 claim: "at most one round-trip time deviation" — in this
  // design the skew is exactly the START's one-way flight time.
  SessionControl master(0, kRom, cfg());
  SessionControl slave(1, kRom, cfg());
  const Dur owd = milliseconds(35);
  Time now = 0;
  relay(slave, master, now + owd);  // HELLO lands at owd
  ASSERT_TRUE(master.running());
  const Time master_start = master.start_time();
  auto start = master.poll(now + owd);
  ASSERT_TRUE(start.has_value());
  slave.ingest(*start, now + 2 * owd);
  ASSERT_TRUE(slave.running());
  EXPECT_EQ(slave.start_time() - master_start, owd);
}

// ---- v3 rollback-mode negotiation --------------------------------------------

SyncConfig rollback_opt_in(int delay = 2) {
  SyncConfig c;
  c.rollback = true;
  c.rollback_input_delay = delay;
  return c;
}

TEST(SessionRollbackTest, NegotiatedWhenBothOptIn) {
  SessionControl master(0, kRom, rollback_opt_in());
  SessionControl slave(1, kRom, rollback_opt_in());
  relay(slave, master, 0);
  ASSERT_TRUE(master.running());
  EXPECT_TRUE(master.rollback_mode());
  auto start = master.poll(0);
  ASSERT_TRUE(start.has_value());
  const auto& s = std::get<StartMsg>(*start);
  EXPECT_NE(s.flags & kFlagRollback, 0u);
  // buf_frames carries delay + 1 (0 keeps its lockstep meaning).
  EXPECT_EQ(s.buf_frames, rollback_opt_in().rollback_input_delay + 1);
  slave.ingest(*start, milliseconds(1));
  EXPECT_TRUE(slave.running());
  EXPECT_TRUE(slave.rollback_mode());
  EXPECT_EQ(slave.rollback_delay(), rollback_opt_in().rollback_input_delay);
}

TEST(SessionRollbackTest, MasterDelayWinsOverSlaveConfig) {
  // The agreed local input delay is the master's configured value; the
  // slave's own (different) preference is overwritten by START.
  SessionControl master(0, kRom, rollback_opt_in(/*delay=*/5));
  SessionControl slave(1, kRom, rollback_opt_in(/*delay=*/2));
  relay(slave, master, 0);
  relay(master, slave, milliseconds(1));
  ASSERT_TRUE(slave.running());
  EXPECT_TRUE(slave.rollback_mode());
  EXPECT_EQ(master.rollback_delay(), 5);
  EXPECT_EQ(slave.rollback_delay(), 5);
}

TEST(SessionRollbackTest, MixedOptInFallsBackToLockstep) {
  // Both-opt-in semantics, both directions: a lone rollback-capable site
  // runs plain lockstep against a legacy peer — no flag in START, no
  // speculation "by assumption".
  for (const bool master_opts_in : {true, false}) {
    SessionControl master(0, kRom, master_opts_in ? rollback_opt_in() : cfg());
    SessionControl slave(1, kRom, master_opts_in ? cfg() : rollback_opt_in());
    relay(slave, master, 0);
    ASSERT_TRUE(master.running());
    EXPECT_FALSE(master.rollback_mode());
    auto start = master.poll(0);
    ASSERT_TRUE(start.has_value());
    EXPECT_EQ(std::get<StartMsg>(*start).flags & kFlagRollback, 0u);
    slave.ingest(*start, milliseconds(1));
    EXPECT_TRUE(slave.running());
    EXPECT_FALSE(slave.rollback_mode());
  }
}

TEST(SessionRollbackTest, SlaveWaitsForStartBeforeRunning) {
  // The mode (and the delay depth) travel only in START: a
  // rollback-configured slave must not start on bare sync traffic — the
  // master may have decided lockstep against a legacy peer, and guessing
  // wrong breaks the merged-input agreement.
  SessionControl slave(1, kRom, rollback_opt_in());
  slave.note_sync_traffic(milliseconds(70));
  EXPECT_FALSE(slave.running());
  StartMsg s;
  s.site = 0;
  s.flags = kFlagRollback;
  s.buf_frames = 4 + 1;
  slave.ingest(Message{s}, milliseconds(80));
  EXPECT_TRUE(slave.running());
  EXPECT_TRUE(slave.rollback_mode());
  EXPECT_EQ(slave.rollback_delay(), 4);
  slave.note_sync_traffic(milliseconds(90));  // now harmless
  EXPECT_TRUE(slave.running());
}

TEST(SessionRollbackTest, StartWithoutFlagMeansLockstep) {
  // A rollback-capable slave whose START carries no flag (master decided
  // lockstep) runs lockstep — and may again start on sync traffic once
  // the decision is known.
  SessionControl slave(1, kRom, rollback_opt_in());
  StartMsg s;
  s.site = 0;
  slave.ingest(Message{s}, 0);
  EXPECT_TRUE(slave.running());
  EXPECT_FALSE(slave.rollback_mode());
}

// ---- v2 adaptive-lag negotiation ---------------------------------------------

SyncConfig adaptive_cfg() {
  SyncConfig c;
  c.adaptive_lag = true;
  return c;
}

/// Runs a full HELLO/START exchange between two SessionControls over a
/// symmetric link with one-way delay `owd`. Deterministic virtual time.
struct HandshakeResult {
  bool both_running = false;
  int master_buf = 0;
  int slave_buf = 0;
  bool master_negotiated = false;
  bool slave_negotiated = false;
};

HandshakeResult run_handshake(SyncConfig master_cfg, SyncConfig slave_cfg, Dur owd) {
  SessionControl master(0, kRom, master_cfg);
  SessionControl slave(1, kRom, slave_cfg);
  struct Pkt {
    Time at;
    Message msg;
  };
  std::vector<Pkt> to_master, to_slave;
  for (Time now = 0; now <= seconds(5); now += milliseconds(5)) {
    for (auto& q : {&to_master, &to_slave}) {
      auto& dst = q == &to_master ? master : slave;
      for (auto it = q->begin(); it != q->end();) {
        if (it->at <= now) {
          // Ingest with the true arrival time so the RTT probe measures the
          // link, not this harness's polling grid.
          dst.ingest(it->msg, it->at);
          it = q->erase(it);
        } else {
          ++it;
        }
      }
    }
    // poll() can yield a HELLO and then an owed START in the same tick.
    while (auto m = master.poll(now)) to_slave.push_back({now + owd, *m});
    while (auto m = slave.poll(now)) to_master.push_back({now + owd, *m});
    if (master.running() && slave.running() && to_master.empty() && to_slave.empty()) break;
  }
  HandshakeResult r;
  r.both_running = master.running() && slave.running();
  r.master_buf = master.effective_buf_frames();
  r.slave_buf = slave.effective_buf_frames();
  r.master_negotiated = master.lag_negotiated();
  r.slave_negotiated = slave.lag_negotiated();
  return r;
}

TEST(SessionAdaptiveTest, NegotiatesLagFromMeasuredRtt) {
  const Dur owd = milliseconds(30);  // RTT 60 ms
  const auto r = run_handshake(adaptive_cfg(), adaptive_cfg(), owd);
  ASSERT_TRUE(r.both_running);
  EXPECT_TRUE(r.master_negotiated);
  EXPECT_TRUE(r.slave_negotiated);
  EXPECT_EQ(r.master_buf, r.slave_buf);
  // The HELLO probe measures exactly 2*owd on this deterministic link.
  EXPECT_EQ(r.master_buf, adaptive_cfg().buf_frames_for_rtt(2 * owd));
  EXPECT_NE(r.master_buf, adaptive_cfg().buf_frames);  // actually adapted
}

TEST(SessionAdaptiveTest, FixedLagWhenOnlyOneSiteOptsIn) {
  // Both-opt-in semantics: a lone adaptive site behaves exactly like v2
  // fixed policy (buf_frames must still match, nothing is negotiated).
  const auto r = run_handshake(adaptive_cfg(), SyncConfig{}, milliseconds(30));
  ASSERT_TRUE(r.both_running);
  EXPECT_FALSE(r.master_negotiated);
  EXPECT_FALSE(r.slave_negotiated);
  EXPECT_EQ(r.master_buf, SyncConfig{}.buf_frames);
  EXPECT_EQ(r.slave_buf, SyncConfig{}.buf_frames);
}

TEST(SessionAdaptiveTest, MismatchedFixedBufFramesAllowedWhenBothAdaptive) {
  // With both sites adaptive the configured fixed values are irrelevant
  // (the negotiated depth replaces them), so they need not match.
  SyncConfig a = adaptive_cfg();
  a.buf_frames = 4;
  SyncConfig b = adaptive_cfg();
  b.buf_frames = 9;
  const auto r = run_handshake(a, b, milliseconds(40));
  ASSERT_TRUE(r.both_running);
  EXPECT_EQ(r.master_buf, r.slave_buf);
  EXPECT_TRUE(r.master_negotiated);
}

TEST(SessionAdaptiveTest, FallsBackToFixedLagWithoutRttSamples) {
  // A peer that claims the adaptive capability but never yields an RTT
  // measurement must not stall the handshake forever: after the bounded
  // probe window the master starts with the configured fixed lag.
  SessionControl master(0, kRom, adaptive_cfg(), milliseconds(50));
  HelloMsg h;
  h.site = 1;
  h.protocol_version = kProtocolVersion;
  h.rom_checksum = kRom;
  h.cfps = 60;
  h.buf_frames = 6;
  h.flags = kHelloFlagAdaptiveLag;  // echo_time = -1, adv_rtt = -1: no probe
  master.ingest(Message{h}, 0);
  EXPECT_FALSE(master.running());  // probing, not started yet
  master.ingest(Message{h}, seconds(1));  // far beyond the probe window
  EXPECT_TRUE(master.running());
  EXPECT_EQ(master.effective_buf_frames(), adaptive_cfg().buf_frames);
  const auto start = master.poll(seconds(1));
  ASSERT_TRUE(start.has_value());
  ASSERT_TRUE(std::holds_alternative<StartMsg>(*start));
  EXPECT_EQ(std::get<StartMsg>(*start).buf_frames, adaptive_cfg().buf_frames);
}

TEST(SessionAdaptiveTest, SlaveIgnoresSyncTrafficUntilLagKnown) {
  // With adaptive lag the negotiated depth travels only in START: bare
  // sync traffic must NOT start the slave (it would run the wrong lag and
  // break the merged-input agreement).
  SessionControl slave(1, kRom, adaptive_cfg());
  slave.note_sync_traffic(milliseconds(70));
  EXPECT_FALSE(slave.running());
  StartMsg s;
  s.site = 0;
  s.buf_frames = 8;
  slave.ingest(Message{s}, milliseconds(80));
  EXPECT_TRUE(slave.running());
  EXPECT_EQ(slave.effective_buf_frames(), 8);
  slave.note_sync_traffic(milliseconds(90));  // now harmless
  EXPECT_TRUE(slave.running());
}

// Property: across a sweep of link RTTs the negotiated depth round-trips
// through the v2 handshake — both sites agree, the value matches the
// ceil(RTT/2 / frame_period) + margin formula, and it stays in bounds.
class SessionNegotiationPropertyTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RttMs, SessionNegotiationPropertyTest,
                         ::testing::Values(0, 5, 20, 50, 80, 120, 200, 400, 1000));

TEST_P(SessionNegotiationPropertyTest, NegotiatedBufFramesRoundTrips) {
  const Dur owd = milliseconds(GetParam()) / 2;
  const SyncConfig c = adaptive_cfg();
  const auto r = run_handshake(c, c, owd);
  ASSERT_TRUE(r.both_running) << "handshake stalled at RTT " << GetParam() << " ms";
  EXPECT_EQ(r.master_buf, r.slave_buf);
  EXPECT_TRUE(r.master_negotiated);
  EXPECT_TRUE(r.slave_negotiated);
  EXPECT_GE(r.master_buf, c.min_buf_frames);
  EXPECT_LE(r.master_buf, c.max_buf_frames);
  EXPECT_EQ(r.master_buf, c.buf_frames_for_rtt(2 * owd));
}

}  // namespace
}  // namespace rtct::core
