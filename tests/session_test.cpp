// Unit tests for SessionControl — the startup handshake of §3.2.
#include <gtest/gtest.h>

#include "src/core/session.h"

namespace rtct::core {
namespace {

constexpr std::uint64_t kRom = 0xABCDEF;

SyncConfig cfg() { return SyncConfig{}; }

// Delivers a poll()ed message from one side into the other.
bool relay(SessionControl& from, SessionControl& to, Time now) {
  if (auto m = from.poll(now)) {
    to.ingest(*m, now);
    return true;
  }
  return false;
}

TEST(SessionTest, HappyPathHandshake) {
  SessionControl master(0, kRom, cfg());
  SessionControl slave(1, kRom, cfg());

  relay(slave, master, 0);  // slave HELLO reaches the master
  EXPECT_TRUE(master.running());  // master starts on compatible HELLO
  EXPECT_FALSE(slave.running());

  relay(master, slave, milliseconds(10));  // START reaches the slave
  EXPECT_TRUE(slave.running());
  EXPECT_EQ(slave.start_time(), milliseconds(10));
}

TEST(SessionTest, HelloRetransmitsOnInterval) {
  SessionControl s(1, kRom, cfg(), milliseconds(50));
  EXPECT_TRUE(s.poll(0).has_value());
  EXPECT_FALSE(s.poll(milliseconds(10)).has_value());  // not due yet
  EXPECT_TRUE(s.poll(milliseconds(50)).has_value());
  EXPECT_TRUE(s.poll(milliseconds(120)).has_value());
}

TEST(SessionTest, LostStartIsRepairedByReHello) {
  SessionControl master(0, kRom, cfg(), milliseconds(50));
  SessionControl slave(1, kRom, cfg(), milliseconds(50));

  relay(slave, master, 0);
  auto lost_start = master.poll(0);  // START produced...
  ASSERT_TRUE(lost_start.has_value());
  // ...but never delivered (packet lost). Slave re-HELLOs later:
  relay(slave, master, milliseconds(60));
  // Master answers every HELLO with a fresh START even while running.
  auto retry = master.poll(milliseconds(60));
  ASSERT_TRUE(retry.has_value());
  EXPECT_TRUE(std::holds_alternative<StartMsg>(*retry));
  slave.ingest(*retry, milliseconds(61));
  EXPECT_TRUE(slave.running());
}

TEST(SessionTest, SlaveStartsOnSyncTrafficToo) {
  // A slave whose START was lost but who already sees game traffic knows
  // the session is live.
  SessionControl slave(1, kRom, cfg());
  slave.note_sync_traffic(milliseconds(70));
  EXPECT_TRUE(slave.running());
}

TEST(SessionTest, MasterIgnoresSyncTrafficShortcut) {
  SessionControl master(0, kRom, cfg());
  master.note_sync_traffic(0);
  EXPECT_FALSE(master.running());  // master must see a HELLO first
}

TEST(SessionTest, ChecksumMismatchFails) {
  SessionControl master(0, kRom, cfg());
  SessionControl slave(1, kRom + 1, cfg());  // different game image
  relay(slave, master, 0);
  EXPECT_EQ(master.state(), SessionState::kFailed);
  EXPECT_NE(master.failure_reason().find("image"), std::string::npos);
  EXPECT_FALSE(master.poll(milliseconds(100)).has_value());  // goes silent
}

TEST(SessionTest, VersionMismatchFails) {
  SessionControl master(0, kRom, cfg());
  HelloMsg h;
  h.site = 1;
  h.protocol_version = kProtocolVersion + 1;
  h.rom_checksum = kRom;
  h.cfps = 60;
  h.buf_frames = 6;
  master.ingest(Message{h}, 0);
  EXPECT_EQ(master.state(), SessionState::kFailed);
  EXPECT_NE(master.failure_reason().find("version"), std::string::npos);
}

TEST(SessionTest, SyncParameterMismatchFails) {
  SyncConfig other = cfg();
  other.buf_frames = 3;  // different local lag => different game timing
  SessionControl master(0, kRom, cfg());
  SessionControl slave(1, kRom, other);
  relay(slave, master, 0);
  EXPECT_EQ(master.state(), SessionState::kFailed);
}

TEST(SessionTest, SelfMessagesIgnored) {
  SessionControl master(0, kRom, cfg());
  auto own_hello = master.poll(0);
  ASSERT_TRUE(own_hello.has_value());
  master.ingest(*own_hello, 0);  // reflected back (e.g. broadcast echo)
  EXPECT_FALSE(master.running());
  master.ingest(Message{StartMsg{0}}, 0);  // own START echoed
  EXPECT_FALSE(master.running());
}

TEST(SessionTest, SlaveDoesNotStartOnHello) {
  SessionControl slave(1, kRom, cfg());
  HelloMsg h;
  h.site = 0;
  h.protocol_version = kProtocolVersion;
  h.rom_checksum = kRom;
  h.cfps = 60;
  h.buf_frames = 6;
  slave.ingest(Message{h}, 0);
  EXPECT_FALSE(slave.running());  // needs START, not just HELLO
}

TEST(SessionTest, StartSkewBoundedByOneRelayStep) {
  // The §3.2 claim: "at most one round-trip time deviation" — in this
  // design the skew is exactly the START's one-way flight time.
  SessionControl master(0, kRom, cfg());
  SessionControl slave(1, kRom, cfg());
  const Dur owd = milliseconds(35);
  Time now = 0;
  relay(slave, master, now + owd);  // HELLO lands at owd
  ASSERT_TRUE(master.running());
  const Time master_start = master.start_time();
  auto start = master.poll(now + owd);
  ASSERT_TRUE(start.has_value());
  slave.ingest(*start, now + 2 * owd);
  ASSERT_TRUE(slave.running());
  EXPECT_EQ(slave.start_time() - master_start, owd);
}

}  // namespace
}  // namespace rtct::core
