// Unit tests for the AC16 ISA encoding and CPU execution semantics.
// Programs are built through the assembler (itself covered in
// assembler_test.cpp) and run on a real ArcadeMachine, then registers and
// flags are inspected.
#include <gtest/gtest.h>

#include <string>

#include "src/emu/assembler.h"
#include "src/emu/disassembler.h"
#include "src/emu/machine.h"

namespace rtct::emu {
namespace {

// Assembles a fragment, runs one frame, returns the machine for inspection.
ArcadeMachine run_fragment(const std::string& body) {
  const std::string src = ".entry main\nmain:\n" + body + "\n    HALT\n";
  auto result = assemble(src, "fragment");
  EXPECT_TRUE(result.ok()) << result.error_text();
  ArcadeMachine m(result.rom);
  m.step_frame(0);
  return m;
}

// ---- encode/decode ----------------------------------------------------------

TEST(IsaTest, EncodeDecodeRoundTrip) {
  for (int op = 0; op < 256; ++op) {
    if (!is_valid_opcode(static_cast<std::uint8_t>(op))) continue;
    Instr in;
    in.op = static_cast<Op>(op);
    in.a = 0x5;
    in.b = 0xA3 & 0xFF;
    in.c = 0x7F;
    std::uint8_t buf[4];
    encode(in, buf);
    const Instr out = decode(buf);
    EXPECT_EQ(out.op, in.op);
    EXPECT_EQ(out.a, in.a);
    EXPECT_EQ(out.b, in.b);
    EXPECT_EQ(out.c, in.c);
  }
}

TEST(IsaTest, ImmediateAssemblesLittleEndian) {
  Instr in;
  in.b = 0x34;
  in.c = 0x12;
  EXPECT_EQ(in.imm(), 0x1234);
}

TEST(IsaTest, InvalidOpcodesRejected) {
  EXPECT_FALSE(is_valid_opcode(0xFF));
  EXPECT_FALSE(is_valid_opcode(0x03));
  EXPECT_FALSE(is_valid_opcode(0x60));
  EXPECT_TRUE(is_valid_opcode(0x00));
  EXPECT_TRUE(is_valid_opcode(0x51));
}

TEST(IsaTest, EveryOpcodeHasMnemonicAndCost) {
  for (int op = 0; op < 256; ++op) {
    if (!is_valid_opcode(static_cast<std::uint8_t>(op))) continue;
    EXPECT_NE(mnemonic(static_cast<Op>(op)), "???");
    EXPECT_GE(cycle_cost(static_cast<Op>(op)), 1);
  }
}

// ---- data movement ----------------------------------------------------------

TEST(CpuTest, LdiMov) {
  auto m = run_fragment(R"(
    LDI r1, 0xBEEF
    MOV r2, r1
  )");
  EXPECT_EQ(m.cpu().reg(1), 0xBEEF);
  EXPECT_EQ(m.cpu().reg(2), 0xBEEF);
}

TEST(CpuTest, StoreThenLoadByteAndWord) {
  auto m = run_fragment(R"(
    LDI r1, 0x8000
    LDI r2, 0x1234
    STW r1, r2          ; mem16[0x8000] = 0x1234
    LDB r3, r1          ; low byte
    LDB r4, r1, 1       ; high byte
    LDW r5, r1
  )");
  EXPECT_EQ(m.cpu().reg(3), 0x34);
  EXPECT_EQ(m.cpu().reg(4), 0x12);
  EXPECT_EQ(m.cpu().reg(5), 0x1234);
  EXPECT_EQ(m.peek16(0x8000), 0x1234);
}

TEST(CpuTest, StbWritesOnlyLowByte) {
  auto m = run_fragment(R"(
    LDI r1, 0x8000
    LDI r2, 0xAB12
    STB r1, r2
  )");
  EXPECT_EQ(m.peek(0x8000), 0x12);
  EXPECT_EQ(m.peek(0x8001), 0x00);
}

TEST(CpuTest, MemoryOffsetAddressing) {
  auto m = run_fragment(R"(
    LDI r1, 0x8010
    LDI r2, 77
    STB r1, r2, 5       ; mem8[0x8015] = 77
  )");
  EXPECT_EQ(m.peek(0x8015), 77);
}

// ---- arithmetic and flags -----------------------------------------------------

TEST(CpuTest, AddSetsCarryOnOverflow) {
  auto m = run_fragment(R"(
    LDI r1, 0xFFFF
    LDI r2, 2
    ADD r1, r2
  )");
  EXPECT_EQ(m.cpu().reg(1), 1);
  EXPECT_TRUE(m.cpu().flag_c());
  EXPECT_FALSE(m.cpu().flag_z());
}

TEST(CpuTest, SubSetsBorrowAndNegative) {
  auto m = run_fragment(R"(
    LDI r1, 3
    SUBI r1, 5
  )");
  EXPECT_EQ(m.cpu().reg(1), 0xFFFE);  // wraps
  EXPECT_TRUE(m.cpu().flag_c());      // borrow
  EXPECT_TRUE(m.cpu().flag_n());
}

TEST(CpuTest, ZeroFlag) {
  auto m = run_fragment(R"(
    LDI r1, 7
    SUBI r1, 7
  )");
  EXPECT_TRUE(m.cpu().flag_z());
  EXPECT_FALSE(m.cpu().flag_c());
}

TEST(CpuTest, MulWrapsLow16) {
  auto m = run_fragment(R"(
    LDI r1, 300
    MULI r1, 300
  )");
  EXPECT_EQ(m.cpu().reg(1), 90000 & 0xFFFF);
}

TEST(CpuTest, LogicalOps) {
  auto m = run_fragment(R"(
    LDI r1, 0b1100
    LDI r2, 0b1010
    MOV r3, r1
    AND r3, r2
    MOV r4, r1
    OR  r4, r2
    MOV r5, r1
    XOR r5, r2
    MOV r6, r1
    NOT r6
    MOV r7, r1
    NEG r7
  )");
  EXPECT_EQ(m.cpu().reg(3), 0b1000);
  EXPECT_EQ(m.cpu().reg(4), 0b1110);
  EXPECT_EQ(m.cpu().reg(5), 0b0110);
  EXPECT_EQ(m.cpu().reg(6), 0xFFF3);
  EXPECT_EQ(m.cpu().reg(7), static_cast<std::uint16_t>(-12));
}

TEST(CpuTest, ShiftsAndCarryOut) {
  auto m = run_fragment(R"(
    LDI r1, 0x8001
    MOV r2, r1
    SHLI r2, 1          ; C = old bit15
    MOV r3, r1
    SHRI r3, 1          ; C = old bit0
  )");
  EXPECT_EQ(m.cpu().reg(2), 0x0002);
  EXPECT_EQ(m.cpu().reg(3), 0x4000);
  EXPECT_TRUE(m.cpu().flag_c());
}

TEST(CpuTest, ShiftByZeroIsIdentity) {
  auto m = run_fragment(R"(
    LDI r1, 0x1234
    SHLI r1, 0
  )");
  EXPECT_EQ(m.cpu().reg(1), 0x1234);
}

// ---- control flow -------------------------------------------------------------

TEST(CpuTest, ConditionalBranchesFollowFlags) {
  auto m = run_fragment(R"(
    LDI r1, 5
    CMPI r1, 5
    JZ  equal
    LDI r2, 111         ; skipped
equal:
    LDI r3, 222
    CMPI r1, 9
    JC  less            ; 5 < 9 unsigned
    LDI r4, 333         ; skipped
less:
    LDI r5, 444
  )");
  EXPECT_EQ(m.cpu().reg(2), 0);
  EXPECT_EQ(m.cpu().reg(3), 222);
  EXPECT_EQ(m.cpu().reg(4), 0);
  EXPECT_EQ(m.cpu().reg(5), 444);
}

TEST(CpuTest, CallRetAndStack) {
  auto m = run_fragment(R"(
    LDI r1, 1
    CALL sub
    ADDI r1, 100        ; runs after RET
    JMP done
sub:
    ADDI r1, 10
    RET
done:
    NOP
  )");
  EXPECT_EQ(m.cpu().reg(1), 111);
  EXPECT_EQ(m.cpu().reg(kSpReg), kInitialSp);  // stack balanced
}

TEST(CpuTest, PushPopLifo) {
  auto m = run_fragment(R"(
    LDI r1, 11
    LDI r2, 22
    PUSH r1
    PUSH r2
    POP r3
    POP r4
  )");
  EXPECT_EQ(m.cpu().reg(3), 22);
  EXPECT_EQ(m.cpu().reg(4), 11);
}

TEST(CpuTest, NestedCallsPreserveReturnPath) {
  auto m = run_fragment(R"(
    LDI r1, 0
    CALL a
    JMP done
a:
    ADDI r1, 1
    CALL b
    ADDI r1, 100
    RET
b:
    ADDI r1, 10
    RET
done:
    NOP
  )");
  EXPECT_EQ(m.cpu().reg(1), 111);
}

// ---- faults --------------------------------------------------------------------

TEST(CpuTest, RomWriteFaults) {
  auto m = run_fragment(R"(
    LDI r1, 0x0100      ; inside ROM
    LDI r2, 1
    STB r1, r2
  )");
  EXPECT_EQ(m.fault(), Fault::kRomWrite);
}

TEST(CpuTest, BrkFaults) {
  auto m = run_fragment("    BRK");
  EXPECT_EQ(m.fault(), Fault::kBrk);
}

TEST(CpuTest, InfiniteLoopExhaustsBudget) {
  auto result = assemble(".entry main\nmain:\n    JMP main\n", "spin");
  ASSERT_TRUE(result.ok());
  ArcadeMachine m(result.rom);
  m.step_frame(0);
  EXPECT_EQ(m.fault(), Fault::kBudgetExceeded);
}

TEST(CpuTest, InvalidOpcodeFaults) {
  Rom rom;
  rom.title = "bad";
  rom.image = {0xEE, 0, 0, 0};  // not an opcode
  ArcadeMachine m(rom);
  m.step_frame(0);
  EXPECT_EQ(m.fault(), Fault::kBadOpcode);
}

TEST(CpuTest, FaultedMachineStopsExecuting) {
  auto m = run_fragment("    BRK");
  const auto hash = m.state_hash();
  m.step_frame(0xFFFF);
  EXPECT_EQ(m.state_hash(), hash);  // frozen, even the frame counter
}

// ---- disassembler ---------------------------------------------------------------

TEST(DisasmTest, FormatsRepresentativeInstructions) {
  auto check = [](std::uint8_t op, std::uint8_t a, std::uint8_t b, std::uint8_t c,
                  const std::string& expect) {
    const std::uint8_t buf[4] = {op, a, b, c};
    EXPECT_EQ(disassemble_instr(decode(buf)), expect);
  };
  check(0x10, 3, 0x34, 0x12, "LDI r3, 0x1234");
  check(0x11, 1, 2, 0, "MOV r1, r2");
  check(0x12, 4, 5, 7, "LDB r4, r5, 7");
  check(0x40, 0, 0x00, 0x02, "JMP 0x0200");
  check(0x01, 0, 0, 0, "HALT");
  check(0x50, 2, 1, 0, "IN r2, 1");
  check(0x51, 4, 3, 0, "OUT 4, r3");
}

TEST(DisasmTest, RoundTripsThroughAssembler) {
  const std::string src = ".entry main\nmain:\n    LDI r1, 0x00FF\n    ADDI r1, 1\n    HALT\n";
  auto rom = assemble(src, "rt").rom;
  const auto listing = disassemble({rom.image.data(), rom.image.size()});
  EXPECT_NE(listing.find("LDI r1, 0x00FF"), std::string::npos);
  EXPECT_NE(listing.find("ADDI r1, 0x0001"), std::string::npos);
  EXPECT_NE(listing.find("HALT"), std::string::npos);
}

}  // namespace
}  // namespace rtct::emu
