// Unit + property tests for SyncPeer — the paper's Algorithm 2.
//
// The sans-IO design lets these tests drive every protocol branch with a
// hand-rolled channel: perfect, lossy, duplicating, reordering — and
// verify the invariant the whole paper rests on: both sites deliver the
// SAME merged input for every frame, where each site's bits are exactly
// what that site submitted BufFrame frames earlier.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <vector>

#include "src/common/random.h"
#include "src/core/sync_peer.h"

namespace rtct::core {
namespace {

SyncConfig test_config() {
  SyncConfig cfg;  // paper defaults: 60 FPS, BufFrame=6, flush 20 ms
  return cfg;
}

// ---- basic Algorithm 2 semantics --------------------------------------------

TEST(SyncPeerTest, FirstBufFrameFramesAreTriviallyReady) {
  // §3.1: "for the first six frames, the exit condition is trivially
  // satisfied and empty inputs are returned".
  SyncPeer peer(0, test_config());
  for (FrameNo f = 0; f < 6; ++f) {
    peer.submit_local(f, make_input(0xFF, 0));
    ASSERT_TRUE(peer.ready()) << "frame " << f;
    EXPECT_EQ(peer.pop(), 0) << "frame " << f;  // empty input
  }
  peer.submit_local(6, make_input(1, 0));
  EXPECT_FALSE(peer.ready());  // frame 6 needs the remote partial input
}

TEST(SyncPeerTest, LocalInputAppliesAfterLocalLag) {
  SyncPeer a(0, test_config());
  SyncPeer b(1, test_config());
  // Run lockstep with a perfect instant channel.
  std::vector<InputWord> delivered_a;
  for (FrameNo f = 0; f < 20; ++f) {
    a.submit_local(f, make_input(static_cast<std::uint8_t>(f + 1), 0));
    b.submit_local(f, make_input(0, static_cast<std::uint8_t>(f + 101)));
    if (auto m = a.make_message(f)) b.ingest(*m, f);
    if (auto m = b.make_message(f)) a.ingest(*m, f);
    ASSERT_TRUE(a.ready());
    ASSERT_TRUE(b.ready());
    const InputWord ia = a.pop();
    const InputWord ib = b.pop();
    ASSERT_EQ(ia, ib) << "replicas disagree at frame " << f;
    delivered_a.push_back(ia);
  }
  // Frames 0-5: empty. Frame 6+: inputs submitted at frame f-6.
  for (int f = 0; f < 6; ++f) EXPECT_EQ(delivered_a[f], 0);
  for (int f = 6; f < 20; ++f) {
    EXPECT_EQ(player_byte(delivered_a[f], 0), f - 6 + 1);
    EXPECT_EQ(player_byte(delivered_a[f], 1), f - 6 + 101);
  }
}

TEST(SyncPeerTest, NotReadyUntilRemoteArrives) {
  SyncPeer a(0, test_config());
  for (FrameNo f = 0; f < 10; ++f) a.submit_local(f, 0);
  for (FrameNo f = 0; f < 6; ++f) (void)a.pop();
  EXPECT_FALSE(a.ready());  // pointer at 6, no remote input ever
  EXPECT_EQ(a.pointer(), 6);
}

TEST(SyncPeerTest, MakeMessageCarriesUnackedWindow) {
  SyncPeer a(0, test_config());
  for (FrameNo f = 0; f < 3; ++f) a.submit_local(f, make_input(static_cast<std::uint8_t>(f), 0));
  const auto m = a.make_message(0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->first_frame, 6);       // LastAckFrame(5) + 1
  EXPECT_EQ(m->last_frame(), 8);      // local inputs buffered to frame 2+6
  EXPECT_EQ(m->ack_frame, 5);         // nothing received yet
  ASSERT_EQ(m->inputs.size(), 3u);
  EXPECT_EQ(player_byte(m->inputs[2], 0), 2);
}

TEST(SyncPeerTest, NoNewInfoMeansNoMessage) {
  SyncPeer a(0, test_config());
  EXPECT_FALSE(a.make_message(0).has_value());  // nothing submitted, nothing to ack
}

TEST(SyncPeerTest, UnackedInputsAreResentEveryFlush) {
  // The go-back-N behaviour of lines 7-11: without an ack, consecutive
  // messages re-carry the same window.
  SyncPeer a(0, test_config());
  a.submit_local(0, make_input(9, 0));
  const auto m1 = a.make_message(0);
  const auto m2 = a.make_message(milliseconds(20));
  ASSERT_TRUE(m1 && m2);
  EXPECT_EQ(m1->first_frame, m2->first_frame);
  EXPECT_EQ(m1->inputs, m2->inputs);
  EXPECT_EQ(a.stats().inputs_retransmitted, 1u);
}

TEST(SyncPeerTest, AckShrinksTheWindow) {
  SyncPeer a(0, test_config());
  SyncPeer b(1, test_config());
  for (FrameNo f = 0; f < 4; ++f) a.submit_local(f, 0);
  const auto m = a.make_message(0);
  ASSERT_TRUE(m);
  b.ingest(*m, 0);
  const auto ack = b.make_message(1);  // carries ack_frame = 9
  ASSERT_TRUE(ack);
  EXPECT_EQ(ack->ack_frame, 9);
  a.ingest(*ack, 1);
  EXPECT_EQ(a.last_ack_frame(), 9);
  a.submit_local(4, make_input(5, 0));
  const auto m2 = a.make_message(2);
  ASSERT_TRUE(m2);
  EXPECT_EQ(m2->first_frame, 10);  // only the new frame
  EXPECT_EQ(m2->inputs.size(), 1u);
}

TEST(SyncPeerTest, PureAckWhenNothingToSend) {
  SyncPeer a(0, test_config());
  SyncPeer b(1, test_config());
  b.submit_local(0, make_input(0, 3));
  a.ingest(*b.make_message(0), 0);
  // a has nothing local to send but owes an ack.
  const auto m = a.make_message(1);
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->inputs.empty());
  EXPECT_EQ(m->ack_frame, 6);
  // And once sent, silence until something changes.
  EXPECT_FALSE(a.make_message(2).has_value());
}

TEST(SyncPeerTest, DuplicateIngestIsIdempotent) {
  SyncPeer a(0, test_config());
  SyncPeer b(1, test_config());
  a.submit_local(0, make_input(0x42, 0));
  const auto m = a.make_message(0);
  ASSERT_TRUE(m);
  b.ingest(*m, 0);
  b.ingest(*m, 1);  // duplicated datagram
  b.ingest(*m, 2);
  EXPECT_EQ(b.stats().duplicate_inputs_rcvd, 2u);
  EXPECT_EQ(b.last_rcv_frame(0), 6);
}

TEST(SyncPeerTest, ReorderedOldMessageDoesNotRegress) {
  SyncPeer a(0, test_config());
  SyncPeer b(1, test_config());
  a.submit_local(0, make_input(1, 0));
  const auto old_msg = a.make_message(0);
  a.submit_local(1, make_input(2, 0));
  const auto new_msg = a.make_message(milliseconds(20));
  ASSERT_TRUE(old_msg && new_msg);
  b.ingest(*new_msg, 0);
  EXPECT_EQ(b.last_rcv_frame(0), 7);
  b.ingest(*old_msg, 1);  // late arrival of the older message
  EXPECT_EQ(b.last_rcv_frame(0), 7);
}

TEST(SyncPeerTest, WrongSiteMessagesDropped) {
  SyncPeer a(0, test_config());
  SyncMsg bogus;
  bogus.site = 0;  // claims to be from ourselves
  bogus.first_frame = 6;
  bogus.inputs = {0xFFFF};
  a.ingest(bogus, 0);
  EXPECT_EQ(a.stats().stale_messages, 1u);
  EXPECT_EQ(a.last_rcv_frame(1), 5);  // unchanged
}

TEST(SyncPeerTest, WindowCapRespected) {
  SyncConfig cfg = test_config();
  cfg.max_inputs_per_message = 10;
  SyncPeer a(0, cfg);
  for (FrameNo f = 0; f < 50; ++f) a.submit_local(f, 0);
  const auto m = a.make_message(0);
  ASSERT_TRUE(m);
  EXPECT_EQ(m->inputs.size(), 10u);
}

TEST(SyncPeerTest, RttEstimateFromEchoes) {
  SyncPeer a(0, test_config());
  SyncPeer b(1, test_config());
  const Dur owd = milliseconds(30);
  Time now = 0;
  for (FrameNo f = 0; f < 30; ++f) {
    a.submit_local(f, 0);
    b.submit_local(f, 0);
    if (auto m = a.make_message(now)) b.ingest(*m, now + owd);
    if (auto m = b.make_message(now)) a.ingest(*m, now + owd);
    now += milliseconds(20);
  }
  // Echo scheme: rtt ≈ 2*owd (echo_hold subtracts the 20 ms turnaround).
  EXPECT_NEAR(to_ms(a.rtt()), 60.0, 8.0);
  EXPECT_GT(a.stats().rtt_samples, 0u);
}

TEST(SyncPeerTest, RemoteObsTracksMasterProgress) {
  SyncPeer slave(1, test_config());
  EXPECT_FALSE(slave.remote_obs().valid);
  SyncPeer master(0, test_config());
  master.submit_local(0, 0);
  slave.ingest(*master.make_message(0), milliseconds(33));
  const auto obs = slave.remote_obs();
  EXPECT_TRUE(obs.valid);
  EXPECT_EQ(obs.last_rcv_frame, 6);  // includes local lag
  EXPECT_EQ(obs.rcv_time, milliseconds(33));
}

TEST(SyncPeerTest, ZeroRttLoopbackIsARealSample) {
  // Regression: the estimator used `rtt_ == 0` as its "no sample yet"
  // sentinel, so a loopback link (true RTT ~0) re-seeded on every echo and
  // `rtt_samples` never reflected reality. A 0 ns sample must count.
  SyncPeer a(0, test_config());
  SyncPeer b(1, test_config());
  EXPECT_FALSE(a.has_rtt_sample());
  Time now = 0;
  for (FrameNo f = 0; f < 10; ++f) {
    a.submit_local(f, 0);
    b.submit_local(f, 0);
    if (auto m = a.make_message(now)) b.ingest(*m, now);  // zero delay
    if (auto m = b.make_message(now)) a.ingest(*m, now);
    now += milliseconds(20);
  }
  EXPECT_TRUE(a.has_rtt_sample());
  EXPECT_EQ(a.rtt(), 0);  // measured ~0, NOT "unmeasured"
  EXPECT_GE(a.stats().rtt_samples, 3u);
  EXPECT_EQ(a.stats().rtt_samples, a.rtt_estimator().sample_count());
}

TEST(SyncPeerTest, ZeroRttDoesNotReseedTheEstimator) {
  // With the old sentinel, srtt==0 meant the NEXT sample re-seeded the
  // estimator wholesale. Now a later spike must be smoothed (1/8 gain),
  // not adopted outright.
  SyncPeer a(0, test_config());
  SyncPeer b(1, test_config());
  a.submit_local(0, 0);
  b.ingest(*a.make_message(0), 0);
  a.ingest(*b.make_message(0), 0);  // echo round-trip: 0 ns sample
  ASSERT_TRUE(a.has_rtt_sample());
  ASSERT_EQ(a.rtt(), 0);
  // Second round-trip suddenly takes 40 ms.
  a.submit_local(1, 0);
  b.ingest(*a.make_message(milliseconds(20)), milliseconds(20));
  a.ingest(*b.make_message(milliseconds(20)), milliseconds(60));
  EXPECT_EQ(a.stats().rtt_samples, 2u);
  EXPECT_EQ(a.rtt(), milliseconds(40) / 8);  // smoothed, not re-seeded
}

// ---- adaptive retransmission (RTO timer + redundancy tail) -------------------

SyncConfig adaptive_config(int redundancy = 0) {
  SyncConfig cfg;
  cfg.adaptive_resend = true;
  cfg.redundant_inputs = redundancy;
  cfg.initial_rto = milliseconds(100);
  return cfg;
}

TEST(SyncPeerAdaptiveTest, NoBlindResendBeforeRtoFires) {
  SyncPeer a(0, adaptive_config());
  a.submit_local(0, make_input(7, 0));
  const auto m1 = a.make_message(0);
  ASSERT_TRUE(m1);
  EXPECT_EQ(m1->inputs.size(), 1u);
  // Flush ticks before the 100 ms RTO: nothing new => silence, where the
  // paper policy would re-send the window every 20 ms.
  EXPECT_FALSE(a.make_message(milliseconds(20)).has_value());
  EXPECT_FALSE(a.make_message(milliseconds(40)).has_value());
  EXPECT_EQ(a.stats().inputs_retransmitted, 0u);
  EXPECT_EQ(a.stats().rto_fires, 0u);
}

TEST(SyncPeerAdaptiveTest, RtoFireResendsWindowAndBacksOff) {
  SyncPeer a(0, adaptive_config());
  a.submit_local(0, make_input(7, 0));
  ASSERT_TRUE(a.make_message(0).has_value());  // arms the timer (RTO 100 ms)
  const auto r1 = a.make_message(milliseconds(100));
  ASSERT_TRUE(r1.has_value());  // timer fired: full window resend
  EXPECT_EQ(r1->inputs.size(), 1u);
  EXPECT_EQ(a.stats().rto_fires, 1u);
  EXPECT_EQ(a.stats().inputs_retransmitted, 1u);
  // Backoff doubled: next fire no earlier than 100+200 ms.
  EXPECT_FALSE(a.make_message(milliseconds(200)).has_value());
  const auto r2 = a.make_message(milliseconds(300));
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(a.stats().rto_fires, 2u);
}

TEST(SyncPeerAdaptiveTest, AckProgressResetsBackoff) {
  SyncPeer a(0, adaptive_config());
  SyncPeer b(1, adaptive_config());
  a.submit_local(0, make_input(7, 0));
  ASSERT_TRUE(a.make_message(0).has_value());
  ASSERT_TRUE(a.make_message(milliseconds(100)).has_value());  // RTO fire #1
  EXPECT_EQ(a.current_rto(), milliseconds(200));               // backed off 2x
  // The peer finally acks everything.
  b.ingest(*a.make_message(milliseconds(300)), milliseconds(300));
  a.ingest(*b.make_message(milliseconds(300)), milliseconds(300));
  EXPECT_EQ(a.last_ack_frame(), 6);
  EXPECT_EQ(a.current_rto(), a.rtt_estimator().rto());  // backoff reset
}

TEST(SyncPeerAdaptiveTest, RedundantTailRecarriesLastKFlushes) {
  // The tail is measured in flushes, not entries: everything first sent
  // within the last K flushes rides along, so a whole catch-up burst is
  // re-carried K times (a newest-K-entries tail could never refill a
  // lost burst and would stall out a full RTO).
  SyncPeer a(0, adaptive_config(/*redundancy=*/2));
  for (FrameNo f = 0; f < 3; ++f) a.submit_local(f, make_input(static_cast<std::uint8_t>(f), 0));
  const auto m1 = a.make_message(0);
  ASSERT_TRUE(m1);
  EXPECT_EQ(m1->inputs.size(), 3u);  // frames 6..8, all new
  EXPECT_EQ(a.stats().redundant_inputs_sent, 0u);
  // Next flush: the 3-input burst from flush 1 is still inside the
  // 2-flush protection window and is re-carried whole with the new input.
  a.submit_local(3, make_input(3, 0));
  const auto m2 = a.make_message(milliseconds(20));
  ASSERT_TRUE(m2);
  EXPECT_EQ(m2->first_frame, 6);
  EXPECT_EQ(m2->inputs.size(), 4u);
  EXPECT_EQ(a.stats().redundant_inputs_sent, 3u);
  EXPECT_EQ(a.stats().inputs_retransmitted, 3u);
  // Third flush: the burst is still covered (sent at flush 1, re-sent at
  // flushes 2 and 3 = K re-sends)...
  a.submit_local(4, make_input(4, 0));
  const auto m3 = a.make_message(milliseconds(40));
  ASSERT_TRUE(m3);
  EXPECT_EQ(m3->first_frame, 6);
  EXPECT_EQ(m3->inputs.size(), 5u);
  // ...and ages out of the tail on the fourth.
  a.submit_local(5, make_input(5, 0));
  const auto m4 = a.make_message(milliseconds(60));
  ASSERT_TRUE(m4);
  EXPECT_EQ(m4->first_frame, 9);  // flush-1 frames 6..8 no longer carried
  EXPECT_EQ(m4->inputs.size(), 3u);
}

TEST(SyncPeerAdaptiveTest, RedundancyTailNeverCrossesTheAck) {
  // Tail is clamped at the unacked boundary: acked inputs are never resent.
  SyncPeer a(0, adaptive_config(/*redundancy=*/4));
  SyncPeer b(1, adaptive_config(/*redundancy=*/4));
  a.submit_local(0, 0);
  b.ingest(*a.make_message(0), 0);
  a.ingest(*b.make_message(0), 0);  // acks frame 6
  a.submit_local(1, make_input(1, 0));
  const auto m = a.make_message(milliseconds(20));
  ASSERT_TRUE(m);
  EXPECT_EQ(m->first_frame, 7);  // tail cannot reach the acked frame 6
  EXPECT_EQ(m->inputs.size(), 1u);
}

// ---- negotiated local lag (set_buf_frames) -----------------------------------

TEST(SyncPeerTest, SetBufFramesReinitializesTheWindow) {
  SyncPeer a(0, test_config());
  ASSERT_TRUE(a.set_buf_frames(12));
  EXPECT_EQ(a.config().buf_frames, 12);
  EXPECT_EQ(a.last_ack_frame(), 11);
  for (FrameNo f = 0; f < 12; ++f) {
    a.submit_local(f, make_input(0xFF, 0));
    ASSERT_TRUE(a.ready()) << "frame " << f;
    EXPECT_EQ(a.pop(), 0);
  }
  EXPECT_FALSE(a.ready());  // frame 12 needs the remote input
}

TEST(SyncPeerTest, SetBufFramesRefusedOnceProtocolMoved) {
  SyncPeer a(0, test_config());
  a.submit_local(0, make_input(1, 0));
  EXPECT_FALSE(a.set_buf_frames(12));  // local input already buffered
  EXPECT_EQ(a.config().buf_frames, test_config().buf_frames);

  SyncPeer b(1, test_config());
  SyncPeer c(0, test_config());
  c.submit_local(0, 0);
  b.ingest(*c.make_message(0), 0);
  EXPECT_FALSE(b.set_buf_frames(12));  // remote input already merged

  SyncPeer d(0, test_config());
  (void)d.pop();
  EXPECT_FALSE(d.set_buf_frames(12));  // pointer already advanced
}

// ---- desync detection ----------------------------------------------------------

TEST(SyncPeerDesyncTest, AgreementKeepsQuiet) {
  SyncPeer a(0, test_config());
  SyncPeer b(1, test_config());
  for (FrameNo f = 0; f <= 120; ++f) {
    a.note_state_hash(f, 1000 + static_cast<std::uint64_t>(f));
    b.note_state_hash(f, 1000 + static_cast<std::uint64_t>(f));
  }
  a.submit_local(120, 0);
  b.ingest(*a.make_message(0), 0);
  EXPECT_FALSE(b.desync_detected());
}

TEST(SyncPeerDesyncTest, MismatchFlagsWhenReceiverIsAhead) {
  SyncPeer a(0, test_config());
  SyncPeer b(1, test_config());
  a.note_state_hash(60, 0xAAAA);
  b.note_state_hash(60, 0xBBBB);  // b already executed frame 60 differently
  a.submit_local(0, 0);
  b.ingest(*a.make_message(0), 0);
  EXPECT_TRUE(b.desync_detected());
  EXPECT_EQ(b.desync_frame(), 60);
}

TEST(SyncPeerDesyncTest, MismatchFlagsWhenReceiverIsBehind) {
  SyncPeer a(0, test_config());
  SyncPeer b(1, test_config());
  a.note_state_hash(60, 0xAAAA);
  a.submit_local(0, 0);
  b.ingest(*a.make_message(0), 0);  // b has not reached frame 60 yet
  EXPECT_FALSE(b.desync_detected());
  b.note_state_hash(60, 0xBBBB);  // now it gets there, with a different hash
  EXPECT_TRUE(b.desync_detected());
  EXPECT_EQ(b.desync_frame(), 60);
}

TEST(SyncPeerDesyncTest, OnlyIntervalFramesAreHashed) {
  SyncConfig cfg = test_config();
  cfg.hash_interval = 60;
  SyncPeer a(0, cfg);
  a.note_state_hash(59, 0x1);  // not an interval frame: ignored
  a.submit_local(0, 0);
  const auto m = a.make_message(0);
  ASSERT_TRUE(m);
  EXPECT_EQ(m->hash_frame, -1);
  a.note_state_hash(60, 0x2);
  const auto m2 = a.make_message(milliseconds(20));
  ASSERT_TRUE(m2);
  EXPECT_EQ(m2->hash_frame, 60);
  EXPECT_EQ(m2->state_hash, 0x2u);
}

TEST(SyncPeerDesyncTest, DisabledByZeroInterval) {
  SyncConfig cfg = test_config();
  cfg.hash_interval = 0;
  SyncPeer a(0, cfg);
  SyncPeer b(1, cfg);
  a.note_state_hash(60, 0xAAAA);
  b.note_state_hash(60, 0xBBBB);
  a.submit_local(0, 0);
  b.ingest(*a.make_message(0), 0);
  EXPECT_FALSE(b.desync_detected());
}

// ---- property test: random hostile channels ----------------------------------

struct ChannelPacket {
  Time deliver_at;
  SyncMsg msg;
};

/// A deliberately nasty unidirectional channel: random delay, loss,
/// duplication (=> reordering falls out of random delays). Guarantees
/// eventual delivery by never dropping two consecutive sends.
class HostileChannel {
 public:
  HostileChannel(Rng rng, Dur min_delay, Dur max_delay, double loss)
      : rng_(rng), min_delay_(min_delay), max_delay_(max_delay), loss_(loss) {}

  void send(Time now, const SyncMsg& msg) {
    const bool drop = rng_.bernoulli(loss_) && !dropped_last_;
    dropped_last_ = drop;
    if (drop) return;
    const int copies = rng_.bernoulli(0.15) ? 2 : 1;
    for (int i = 0; i < copies; ++i) {
      const Dur d = min_delay_ + rng_.uniform(0, max_delay_ - min_delay_);
      inflight_.push_back({now + d, msg});
    }
  }

  std::vector<SyncMsg> deliver_due(Time now) {
    std::vector<SyncMsg> out;
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      if (it->deliver_at <= now) {
        out.push_back(it->msg);
        it = inflight_.erase(it);
      } else {
        ++it;
      }
    }
    return out;
  }

 private:
  Rng rng_;
  Dur min_delay_, max_delay_;
  double loss_;
  bool dropped_last_ = false;
  std::deque<ChannelPacket> inflight_;
};

class SyncPeerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SyncPeerPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

TEST_P(SyncPeerPropertyTest, LockstepInvariantUnderHostileNetwork) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  SyncConfig cfg = test_config();
  SyncPeer peers[2] = {SyncPeer(0, cfg), SyncPeer(1, cfg)};
  HostileChannel ch01(rng.fork(), milliseconds(5), milliseconds(90), 0.25);
  HostileChannel ch10(rng.fork(), milliseconds(5), milliseconds(90), 0.25);

  constexpr FrameNo kFrames = 120;
  // Per-site input scripts (what each site's player "pressed" per frame).
  std::vector<std::uint8_t> script[2];
  for (int s = 0; s < 2; ++s) {
    for (FrameNo f = 0; f < kFrames; ++f) {
      script[s].push_back(static_cast<std::uint8_t>(rng.next_u64()));
    }
  }

  std::vector<InputWord> delivered[2];
  FrameNo submitted[2] = {0, 0};
  Time next_flush[2] = {0, 0};
  Time now = 0;
  const Time deadline = seconds(120);

  while ((delivered[0].size() < kFrames || delivered[1].size() < kFrames) && now < deadline) {
    now += milliseconds(1);
    for (int s = 0; s < 2; ++s) {
      auto& peer = peers[s];
      auto& in_ch = s == 0 ? ch10 : ch01;
      auto& out_ch = s == 0 ? ch01 : ch10;

      for (const auto& msg : in_ch.deliver_due(now)) peer.ingest(msg, now);

      // Frame loop emulation: submit + pop when ready, random pacing.
      if (submitted[s] < kFrames && peer.pointer() == submitted[s]) {
        peer.submit_local(submitted[s],
                          s == 0 ? make_input(script[0][submitted[s]], 0)
                                 : make_input(0, script[1][submitted[s]]));
        ++submitted[s];
      }
      if (delivered[s].size() < kFrames && peer.ready() &&
          peer.pointer() < submitted[s]) {
        delivered[s].push_back(peer.pop());
      }
      if (now >= next_flush[s]) {
        next_flush[s] = now + milliseconds(20);
        if (auto m = peer.make_message(now)) out_ch.send(now, *m);
      }
    }
  }

  ASSERT_EQ(delivered[0].size(), kFrames) << "site 0 deadlocked (seed " << seed << ")";
  ASSERT_EQ(delivered[1].size(), kFrames) << "site 1 deadlocked (seed " << seed << ")";

  for (FrameNo f = 0; f < kFrames; ++f) {
    // Invariant 1: both replicas saw the identical merged input.
    ASSERT_EQ(delivered[0][f], delivered[1][f]) << "divergence at frame " << f;
    // Invariant 2: the merged input is exactly the two scripts, shifted by
    // the local lag.
    const InputWord expect =
        f < cfg.buf_frames
            ? 0
            : make_input(script[0][f - cfg.buf_frames], script[1][f - cfg.buf_frames]);
    ASSERT_EQ(delivered[0][f], expect) << "wrong input at frame " << f;
  }
}

}  // namespace
}  // namespace rtct::core
