// Unit tests for ArcadeMachine: memory map, IO ports, frame stepping,
// save states and state hashing — the determinism contract of §3.
#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/emu/assembler.h"
#include "src/emu/machine.h"
#include "src/emu/rom_io.h"
#include "src/games/roms.h"

namespace rtct::emu {
namespace {

Rom make_rom(const std::string& body) {
  auto r = assemble(".entry main\nmain:\n" + body, "test");
  EXPECT_TRUE(r.ok()) << r.error_text();
  return r.rom;
}

// ROM that copies both input ports and the frame counter into RAM and
// loops, one frame per HALT.
const char* kEchoBody = R"(
    LDI r14, 0x8000
frame:
    IN  r0, 0
    STW r14, r0, 0
    IN  r1, 1
    STW r14, r1, 2
    IN  r2, 2
    STW r14, r2, 4
    OUT 4, r0
    HALT
    JMP frame
)";

TEST(MachineTest, InputPortsLatchPerFrame) {
  ArcadeMachine m(make_rom(kEchoBody));
  m.step_frame(make_input(0x12, 0x34));
  EXPECT_EQ(m.peek16(0x8000), 0x12);
  EXPECT_EQ(m.peek16(0x8002), 0x34);
  m.step_frame(make_input(0x56, 0x78));
  EXPECT_EQ(m.peek16(0x8000), 0x56);
  EXPECT_EQ(m.peek16(0x8002), 0x78);
}

TEST(MachineTest, FrameCounterPortAdvances) {
  ArcadeMachine m(make_rom(kEchoBody));
  m.step_frame(0);
  EXPECT_EQ(m.peek16(0x8004), 0);  // counter read during frame 0
  m.step_frame(0);
  EXPECT_EQ(m.peek16(0x8004), 1);
  EXPECT_EQ(m.frame(), 2);
}

TEST(MachineTest, TonePortVisible) {
  ArcadeMachine m(make_rom(kEchoBody));
  m.step_frame(make_input(0x42, 0));
  EXPECT_EQ(m.tone(), 0x42);
}

TEST(MachineTest, UndefinedPortsReadZeroAndIgnoreWrites) {
  ArcadeMachine m(make_rom(R"(
    IN  r0, 99
    LDI r14, 0x8000
    STW r14, r0, 0
    OUT 99, r0
    HALT
)"));
  m.step_frame(0xFFFF);
  EXPECT_FALSE(m.faulted());
  EXPECT_EQ(m.peek16(0x8000), 0);
}

TEST(MachineTest, DebugPortLogsWithoutAffectingHash) {
  ArcadeMachine a(make_rom("    LDI r0, 7\n    OUT 5, r0\n    HALT\n"));
  ArcadeMachine b(make_rom("    LDI r0, 7\n    NOP\n    HALT\n"));
  a.step_frame(0);
  b.step_frame(0);
  ASSERT_EQ(a.debug_log().size(), 1u);
  EXPECT_EQ(a.debug_log()[0], 7);
  EXPECT_TRUE(b.debug_log().empty());
  EXPECT_EQ(a.state_hash(), b.state_hash());  // debug traffic is not state
}

TEST(MachineTest, FramebufferIsMemoryMapped) {
  ArcadeMachine m(make_rom(R"(
    LDI r1, 0xA000
    LDI r2, 9
    STB r1, r2, 5
    HALT
)"));
  m.step_frame(0);
  EXPECT_EQ(m.framebuffer()[5], 9);
  EXPECT_EQ(m.framebuffer().size(), kFbSize);
}

TEST(MachineTest, RomIsVisibleButNotWritable) {
  auto rom = make_rom("    HALT\n");
  ArcadeMachine m(rom);
  EXPECT_EQ(m.peek(0), rom.image[0]);
  m.step_frame(0);
  EXPECT_FALSE(m.faulted());
}

TEST(MachineTest, HashChangesWithRamVideoAndRegisters) {
  ArcadeMachine m(make_rom(kEchoBody));
  const auto h0 = m.state_hash();
  m.step_frame(make_input(1, 0));
  const auto h1 = m.state_hash();
  m.step_frame(make_input(2, 0));
  EXPECT_NE(h0, h1);
  EXPECT_NE(h1, m.state_hash());
}

TEST(MachineTest, DigestV1EqualsStateHash) {
  ArcadeMachine m(make_rom(kEchoBody));
  for (int i = 0; i < 5; ++i) {
    m.step_frame(make_input(static_cast<std::uint8_t>(i), 3));
    EXPECT_EQ(m.state_digest(1), m.state_hash());
    EXPECT_EQ(m.state_digest(0), m.state_hash());
  }
}

TEST(MachineTest, DigestV2EqualStateMeansEqualDigest) {
  // Two replicas fed identical inputs agree on the v2 digest every frame —
  // the property the desync tripwire runs on. v2 is also domain-separated
  // from v1: same state, different fingerprint function, different value.
  ArcadeMachine a(make_rom(kEchoBody));
  ArcadeMachine b(make_rom(kEchoBody));
  for (int i = 0; i < 30; ++i) {
    const InputWord in = make_input(static_cast<std::uint8_t>(i * 7), static_cast<std::uint8_t>(i));
    a.step_frame(in);
    b.step_frame(in);
    ASSERT_EQ(a.state_digest(2), b.state_digest(2)) << "frame " << i;
    EXPECT_NE(a.state_digest(2), a.state_digest(1)) << "frame " << i;
  }
}

TEST(MachineTest, DigestV2IncrementalMatchesFullRecompute) {
  // The dirty-page cache must be invisible: a replica that loads the
  // snapshot (all pages rehashed from scratch) computes the same digest
  // the original reached via incremental updates.
  ArcadeMachine m(make_rom(kEchoBody));
  for (int i = 0; i < 25; ++i) {
    m.step_frame(make_input(static_cast<std::uint8_t>(i), 0x20));
    (void)m.state_digest(2);  // exercise the incremental path every frame
  }
  const auto incremental = m.state_digest(2);
  ArcadeMachine replica(make_rom(kEchoBody));
  ASSERT_TRUE(replica.load_state(m.save_state()));
  EXPECT_EQ(replica.state_digest(2), incremental);
}

TEST(MachineTest, DigestV2AnySingleByteMutationChangesDigest) {
  // Flip one byte of serialized state, load it, digest must differ: the
  // per-page digests leave no blind spot anywhere in the mutable region
  // or the CPU/latch/tone/frame header.
  ArcadeMachine m(make_rom(kEchoBody));
  for (int i = 0; i < 10; ++i) m.step_frame(make_input(5, 9));
  const auto base = m.state_digest(2);
  auto snap = m.save_state();
  // Positions 0..8 are the snapshot's own version byte + ROM checksum
  // (load-rejected, not machine state). Cover the full header densely and
  // sample the 32 KiB RAM image.
  std::vector<std::size_t> positions;
  for (std::size_t i = 9; i < 56; ++i) positions.push_back(i);
  for (std::size_t i = 56; i < snap.size(); i += 997) positions.push_back(i);
  positions.push_back(snap.size() - 1);
  for (const std::size_t pos : positions) {
    snap[pos] ^= 0x01;
    ArcadeMachine replica(make_rom(kEchoBody));
    ASSERT_TRUE(replica.load_state(snap)) << "byte " << pos;
    EXPECT_NE(replica.state_digest(2), base) << "byte " << pos;
    snap[pos] ^= 0x01;
  }
}

TEST(MachineTest, DigestV2CrossCheckStaysClean) {
  // Full-rehash cross-check mode (the chaos-soak oracle): honest use of
  // the incremental cache must never trip it.
  set_state_digest_cross_check(true);
  ASSERT_TRUE(state_digest_cross_check());
  ArcadeMachine m(make_rom(kEchoBody));
  for (int i = 0; i < 20; ++i) {
    m.step_frame(make_input(static_cast<std::uint8_t>(i), 1));
    (void)m.state_digest(2);
  }
  ArcadeMachine replica(make_rom(kEchoBody));
  ASSERT_TRUE(replica.load_state(m.save_state()));
  (void)replica.state_digest(2);
  set_state_digest_cross_check(false);
  EXPECT_EQ(state_digest_cross_check_failures(), 0u);
  EXPECT_FALSE(state_digest_cross_check());
}

TEST(MachineTest, SaveStateIntoMatchesSaveStateAndReusesCapacity) {
  ArcadeMachine m(make_rom(kEchoBody));
  m.step_frame(make_input(1, 2));
  std::vector<std::uint8_t> scratch;
  m.save_state_into(scratch);
  EXPECT_EQ(scratch, m.save_state());
  const auto* data_before = scratch.data();
  const auto cap_before = scratch.capacity();
  m.step_frame(make_input(3, 4));
  m.save_state_into(scratch);
  EXPECT_EQ(scratch, m.save_state());
  EXPECT_EQ(scratch.data(), data_before);      // no reallocation
  EXPECT_EQ(scratch.capacity(), cap_before);
}

TEST(MachineTest, RestoreAndResimulateEqualsStraightLine) {
  // The rollback engine's load-bearing assumption, as a property test:
  // snapshot -> speculate with wrong inputs -> restore -> re-simulate the
  // true inputs must be indistinguishable from never having speculated,
  // digest for digest, over 1000 random frames on a real ROM ("torture",
  // which touches RAM/video/registers as widely as possible). Runs with
  // the full-rehash cross-check armed so a restore that forgets to
  // invalidate the incremental digest cache is caught at the exact frame.
  auto straight = games::make_machine("torture");
  auto rb = games::make_machine("torture");
  Rng rng(20260807);
  constexpr int kFrames = 1000;
  std::vector<InputWord> inputs(static_cast<std::size_t>(kFrames));
  for (auto& w : inputs) w = static_cast<InputWord>(rng.next_u64());

  std::vector<std::uint64_t> want(static_cast<std::size_t>(kFrames));
  for (int f = 0; f < kFrames; ++f) {
    straight->step_frame(inputs[static_cast<std::size_t>(f)]);
    want[static_cast<std::size_t>(f)] = straight->state_digest(2);
  }

  set_state_digest_cross_check(true);
  const std::uint64_t genesis = rb->state_digest(2);
  std::vector<std::uint8_t> snap;  // reused, as the rollback ring does
  int f = 0;
  while (f < kFrames) {
    rb->save_state_into(snap);
    // Speculate 1..8 frames on garbage inputs (a mispredicting peer).
    const int depth = 1 + static_cast<int>(rng.next_u64() % 8);
    for (int j = 0; j < depth && f + j < kFrames; ++j) {
      rb->step_frame(static_cast<InputWord>(rng.next_u64()));
      (void)rb->state_digest(2);  // keep the incremental cache hot
    }
    // Restore: the machine must be byte-equivalent to pre-speculation.
    ASSERT_TRUE(rb->load_state(snap));
    ASSERT_EQ(rb->state_digest(2),
              f == 0 ? genesis : want[static_cast<std::size_t>(f - 1)])
        << "restore did not reproduce pre-speculation state at frame " << f;
    // Re-simulate the true inputs over the speculated span.
    for (int j = 0; j < depth && f < kFrames; ++j, ++f) {
      rb->step_frame(inputs[static_cast<std::size_t>(f)]);
      ASSERT_EQ(rb->state_digest(2), want[static_cast<std::size_t>(f)])
          << "restore + re-simulate diverged from straight line at frame " << f;
    }
  }
  set_state_digest_cross_check(false);
  EXPECT_EQ(state_digest_cross_check_failures(), 0u)
      << "a restore path failed to invalidate the incremental digest cache";
  // Stronger than digests: the final machine images are byte-identical.
  EXPECT_EQ(rb->save_state(), straight->save_state());
  EXPECT_EQ(rb->frame(), straight->frame());
}

TEST(MachineTest, SaveStateIsVersionChecked) {
  ArcadeMachine m(make_rom(kEchoBody));
  m.step_frame(0);
  auto snap = m.save_state();
  snap[0] = 99;  // wrong version byte
  EXPECT_FALSE(m.load_state(snap));
}

TEST(MachineTest, TruncatedSnapshotRejected) {
  ArcadeMachine m(make_rom(kEchoBody));
  m.step_frame(0);
  auto snap = m.save_state();
  snap.resize(snap.size() / 2);
  EXPECT_FALSE(m.load_state(snap));
}

TEST(MachineTest, OversizedSnapshotRejected) {
  ArcadeMachine m(make_rom(kEchoBody));
  m.step_frame(0);
  auto snap = m.save_state();
  snap.push_back(0);
  EXPECT_FALSE(m.load_state(snap));
}

TEST(MachineTest, SnapshotRestoresFrameCounterAndTone) {
  ArcadeMachine m(make_rom(kEchoBody));
  for (int i = 0; i < 10; ++i) m.step_frame(make_input(static_cast<std::uint8_t>(i), 0));
  const auto snap = m.save_state();
  const auto frame = m.frame();
  const auto tone = m.tone();
  for (int i = 0; i < 5; ++i) m.step_frame(0xFFFF);
  ASSERT_TRUE(m.load_state(snap));
  EXPECT_EQ(m.frame(), frame);
  EXPECT_EQ(m.tone(), tone);
}

TEST(MachineTest, CyclesPerFrameConfigurable) {
  MachineConfig tight;
  tight.cycles_per_frame = 8;  // too small for the echo loop
  ArcadeMachine m(make_rom(kEchoBody), tight);
  m.step_frame(0);
  EXPECT_EQ(m.fault(), Fault::kBudgetExceeded);
}

TEST(MachineTest, LastFrameCyclesReported) {
  ArcadeMachine m(make_rom("    NOP\n    NOP\n    HALT\n"));
  m.step_frame(0);
  EXPECT_EQ(m.last_frame_cycles(), 3);  // NOP + NOP + HALT, 1 cycle each
}

TEST(MachineTest, ContentIdMatchesRomChecksum) {
  auto rom = make_rom(kEchoBody);
  ArcadeMachine m(rom);
  EXPECT_EQ(m.content_id(), rom.checksum());
  EXPECT_NE(m.content_id(), 0u);
}

TEST(MachineTest, RomChecksumCoversEntryPoint) {
  Rom a;
  a.image = {0, 1, 2, 3};
  a.entry = 0;
  Rom b = a;
  b.entry = 4;
  EXPECT_NE(a.checksum(), b.checksum());
}

// ---- .rom container format -------------------------------------------------

TEST(RomIoTest, SerializeParseRoundTrip) {
  auto rom = make_rom(kEchoBody);
  rom.title = "echo test";
  const auto bytes = serialize_rom(rom);
  const auto back = parse_rom(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->title, "echo test");
  EXPECT_EQ(back->entry, rom.entry);
  EXPECT_EQ(back->image, rom.image);
  EXPECT_EQ(back->checksum(), rom.checksum());
}

TEST(RomIoTest, BadMagicRejected) {
  auto rom = make_rom(kEchoBody);
  auto bytes = serialize_rom(rom);
  bytes[0] = 'X';
  EXPECT_FALSE(parse_rom(bytes).has_value());
}

TEST(RomIoTest, AnyBitFlipRejectedByCrc) {
  auto rom = make_rom(kEchoBody);
  const auto bytes = serialize_rom(rom);
  for (std::size_t i = 8; i < bytes.size(); i += 13) {  // sample positions
    auto copy = bytes;
    copy[i] ^= 0x40;
    EXPECT_FALSE(parse_rom(copy).has_value()) << "offset " << i;
  }
}

TEST(RomIoTest, TruncationRejected) {
  auto rom = make_rom(kEchoBody);
  auto bytes = serialize_rom(rom);
  bytes.resize(bytes.size() - 5);
  EXPECT_FALSE(parse_rom(bytes).has_value());
  EXPECT_FALSE(parse_rom({}).has_value());
}

TEST(RomIoTest, FileRoundTrip) {
  auto rom = make_rom(kEchoBody);
  const std::string path = ::testing::TempDir() + "/rtct_rom_io_test.rom";
  ASSERT_TRUE(save_rom_file(rom, path));
  const auto back = load_rom_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->image, rom.image);
  std::remove(path.c_str());
}

TEST(RomIoTest, MissingFileIsNullopt) {
  EXPECT_FALSE(load_rom_file("/nonexistent/definitely/not.rom").has_value());
}

}  // namespace
}  // namespace rtct::emu
