// Unit tests for the frame timeline metrics (§4's measurements) and the
// rtct.timeline.v1 JSON round trip.
#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/common/telemetry.h"
#include "src/core/metrics.h"

namespace rtct::core {
namespace {

FrameRecord rec(FrameNo f, Time begin, std::uint64_t hash, Dur stall = 0) {
  FrameRecord r;
  r.frame = f;
  r.begin_time = begin;
  r.state_hash = hash;
  r.stall = stall;
  return r;
}

TEST(MetricsTest, FrameTimesAreConsecutiveDeltas) {
  FrameTimeline t;
  t.add(rec(0, 0, 1));
  t.add(rec(1, milliseconds(17), 2));
  t.add(rec(2, milliseconds(33), 3));
  const auto s = t.frame_times();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.samples()[0], 17.0);
  EXPECT_DOUBLE_EQ(s.samples()[1], 16.0);
}

TEST(MetricsTest, BeginTimesInMs) {
  FrameTimeline t;
  t.add(rec(0, milliseconds(5), 1));
  EXPECT_DOUBLE_EQ(t.begin_times_ms()[0], 5.0);
}

TEST(MetricsTest, StallAccounting) {
  FrameTimeline t;
  t.add(rec(0, 0, 1));
  t.add(rec(1, milliseconds(17), 2, milliseconds(4)));
  t.add(rec(2, milliseconds(40), 3, milliseconds(9)));
  EXPECT_EQ(t.stalled_frames(), 2u);
  EXPECT_DOUBLE_EQ(t.stalls().summarize().max, 9.0);
}

TEST(MetricsTest, SynchronyIsSignedDifferenceSeries) {
  FrameTimeline a, b;
  a.add(rec(0, milliseconds(10), 1));
  a.add(rec(1, milliseconds(30), 2));
  b.add(rec(0, milliseconds(12), 1));
  b.add(rec(1, milliseconds(25), 2));
  const auto s = synchrony_differences(a, b);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.samples()[0], -2.0);
  EXPECT_DOUBLE_EQ(s.samples()[1], 5.0);
  EXPECT_DOUBLE_EQ(s.summarize().mean_abs, 3.5);  // footnote 11 metric
}

TEST(MetricsTest, SynchronyUsesCommonPrefix) {
  FrameTimeline a, b;
  a.add(rec(0, 0, 1));
  a.add(rec(1, milliseconds(17), 2));
  b.add(rec(0, milliseconds(1), 1));
  EXPECT_EQ(synchrony_differences(a, b).size(), 1u);
}

TEST(MetricsTest, FirstDivergenceFindsHashMismatch) {
  FrameTimeline a, b;
  for (int i = 0; i < 5; ++i) {
    a.add(rec(i, i * 17, 100 + i));
    b.add(rec(i, i * 17 + 1, i == 3 ? 999u : 100 + i));
  }
  EXPECT_EQ(first_divergence(a, b), 3);
}

TEST(MetricsTest, NoDivergenceIsMinusOne) {
  FrameTimeline a, b;
  a.add(rec(0, 0, 42));
  b.add(rec(0, 5, 42));
  EXPECT_EQ(first_divergence(a, b), -1);
  EXPECT_EQ(first_divergence(FrameTimeline{}, FrameTimeline{}), -1);
}

// ---- rtct.timeline.v1 JSON ----------------------------------------------------

FrameRecord full_rec(FrameNo f) {
  FrameRecord r;
  r.frame = f;
  r.begin_time = f * milliseconds(17) + 123;  // odd ns: must survive exactly
  r.input_ready_time = r.begin_time + milliseconds(2) + 7;
  r.compute = milliseconds(5) + 1;
  r.wait = milliseconds(9);
  r.stall = f == 2 ? milliseconds(2) : Dur{0};
  r.state_hash = 0xf234'5678'9abc'def0ull + static_cast<std::uint64_t>(f);
  return r;
}

TEST(MetricsTest, TimelineJsonRoundTripIsExact) {
  FrameTimeline t;
  for (FrameNo f = 0; f < 5; ++f) t.add(full_rec(f));

  const std::string json = timeline_to_json(t, "unit/pong", 60);
  const auto doc = parse_json(json);
  ASSERT_TRUE(doc.has_value()) << json;
  const auto back = timeline_from_json(*doc);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    const auto& a = t.records()[i];
    const auto& b = back->records()[i];
    EXPECT_EQ(a.frame, b.frame);
    EXPECT_EQ(a.begin_time, b.begin_time);  // ns-exact (hash of top bits too)
    EXPECT_EQ(a.input_ready_time, b.input_ready_time);
    EXPECT_EQ(a.compute, b.compute);
    EXPECT_EQ(a.wait, b.wait);
    EXPECT_EQ(a.stall, b.stall);
    EXPECT_EQ(a.state_hash, b.state_hash);  // full 64-bit, via hex strings
  }
}

TEST(MetricsTest, TimelineFromJsonRejectsWrongSchemaAndRaggedColumns) {
  FrameTimeline t;
  t.add(full_rec(0));
  const std::string json = timeline_to_json(t, "x", 60);

  auto doc = parse_json(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(timeline_from_json(*doc).has_value());

  std::string wrong = json;
  const auto pos = wrong.find("rtct.timeline.v1");
  ASSERT_NE(pos, std::string::npos);
  wrong.replace(pos, 16, "rtct.metrics.v97");
  auto bad = parse_json(wrong);
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(timeline_from_json(*bad).has_value());
}

TEST(MetricsTest, LatencyBreakdownSumsToFrameTime) {
  FrameTimeline t;
  for (FrameNo f = 0; f < 4; ++f) {
    FrameRecord r;
    r.frame = f;
    r.begin_time = f * milliseconds(17);
    r.stall = milliseconds(2);
    r.compute = milliseconds(5);
    r.wait = milliseconds(9);
    t.add(r);
  }
  const LatencyBreakdown b = t.latency_breakdown();
  EXPECT_DOUBLE_EQ(b.frame_ms, 17.0);
  EXPECT_DOUBLE_EQ(b.stall_ms, 2.0);
  EXPECT_DOUBLE_EQ(b.compute_ms, 5.0);
  EXPECT_DOUBLE_EQ(b.sleep_ms, 9.0);
  EXPECT_NEAR(b.other_ms, 1.0, 1e-9);  // budget closes: 17 = 2 + 5 + 9 + 1
}

TEST(MetricsTest, ExportMetricsPublishesTimelineInstruments) {
  FrameTimeline t;
  for (FrameNo f = 0; f < 3; ++f) t.add(full_rec(f));
  MetricsRegistry reg;
  t.export_metrics(reg);
  EXPECT_EQ(reg.value("timeline.frames"), 3.0);
  EXPECT_EQ(reg.value("timeline.stalled_frames"), 1.0);  // full_rec stalls f==2
  EXPECT_EQ(reg.histogram("timeline.frame_time_ms").count(), 2u);  // deltas
  EXPECT_EQ(reg.histogram("timeline.compute_ms").count(), 3u);
}

}  // namespace
}  // namespace rtct::core
