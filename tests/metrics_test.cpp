// Unit tests for the frame timeline metrics (§4's measurements).
#include <gtest/gtest.h>

#include "src/core/metrics.h"

namespace rtct::core {
namespace {

FrameRecord rec(FrameNo f, Time begin, std::uint64_t hash, Dur stall = 0) {
  FrameRecord r;
  r.frame = f;
  r.begin_time = begin;
  r.state_hash = hash;
  r.stall = stall;
  return r;
}

TEST(MetricsTest, FrameTimesAreConsecutiveDeltas) {
  FrameTimeline t;
  t.add(rec(0, 0, 1));
  t.add(rec(1, milliseconds(17), 2));
  t.add(rec(2, milliseconds(33), 3));
  const auto s = t.frame_times();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.samples()[0], 17.0);
  EXPECT_DOUBLE_EQ(s.samples()[1], 16.0);
}

TEST(MetricsTest, BeginTimesInMs) {
  FrameTimeline t;
  t.add(rec(0, milliseconds(5), 1));
  EXPECT_DOUBLE_EQ(t.begin_times_ms()[0], 5.0);
}

TEST(MetricsTest, StallAccounting) {
  FrameTimeline t;
  t.add(rec(0, 0, 1));
  t.add(rec(1, milliseconds(17), 2, milliseconds(4)));
  t.add(rec(2, milliseconds(40), 3, milliseconds(9)));
  EXPECT_EQ(t.stalled_frames(), 2u);
  EXPECT_DOUBLE_EQ(t.stalls().summarize().max, 9.0);
}

TEST(MetricsTest, SynchronyIsSignedDifferenceSeries) {
  FrameTimeline a, b;
  a.add(rec(0, milliseconds(10), 1));
  a.add(rec(1, milliseconds(30), 2));
  b.add(rec(0, milliseconds(12), 1));
  b.add(rec(1, milliseconds(25), 2));
  const auto s = synchrony_differences(a, b);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s.samples()[0], -2.0);
  EXPECT_DOUBLE_EQ(s.samples()[1], 5.0);
  EXPECT_DOUBLE_EQ(s.summarize().mean_abs, 3.5);  // footnote 11 metric
}

TEST(MetricsTest, SynchronyUsesCommonPrefix) {
  FrameTimeline a, b;
  a.add(rec(0, 0, 1));
  a.add(rec(1, milliseconds(17), 2));
  b.add(rec(0, milliseconds(1), 1));
  EXPECT_EQ(synchrony_differences(a, b).size(), 1u);
}

TEST(MetricsTest, FirstDivergenceFindsHashMismatch) {
  FrameTimeline a, b;
  for (int i = 0; i < 5; ++i) {
    a.add(rec(i, i * 17, 100 + i));
    b.add(rec(i, i * 17 + 1, i == 3 ? 999u : 100 + i));
  }
  EXPECT_EQ(first_divergence(a, b), 3);
}

TEST(MetricsTest, NoDivergenceIsMinusOne) {
  FrameTimeline a, b;
  a.add(rec(0, 0, 42));
  b.add(rec(0, 5, 42));
  EXPECT_EQ(first_divergence(a, b), -1);
  EXPECT_EQ(first_divergence(FrameTimeline{}, FrameTimeline{}), -1);
}

}  // namespace
}  // namespace rtct::core
