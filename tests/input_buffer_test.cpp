// Unit tests for InputBuffer (Algorithm 2's IBuf).
#include <gtest/gtest.h>

#include "src/core/input_buffer.h"

namespace rtct::core {
namespace {

TEST(InputBufferTest, MergedRequiresBothSites) {
  InputBuffer buf;
  EXPECT_FALSE(buf.merged(5).has_value());
  EXPECT_TRUE(buf.put(0, 5, make_input(0x11, 0)));
  EXPECT_FALSE(buf.merged(5).has_value());
  EXPECT_TRUE(buf.put(1, 5, make_input(0, 0x22)));
  ASSERT_TRUE(buf.merged(5).has_value());
  EXPECT_EQ(*buf.merged(5), make_input(0x11, 0x22));
}

TEST(InputBufferTest, PutMasksForeignBits) {
  // A site can only contribute its own SET[k] bits (the paper's bit
  // partition); anything else it claims is discarded.
  InputBuffer buf;
  buf.put(0, 0, 0xFFFF);  // site 0 tries to set player 1's bits too
  buf.put(1, 0, 0x0000);
  EXPECT_EQ(*buf.merged(0), site_input_mask(0));
}

TEST(InputBufferTest, DuplicatesIgnored) {
  // §3.1: "only one copy of them will be kept in the buffer".
  InputBuffer buf;
  EXPECT_TRUE(buf.put(0, 3, make_input(0xAA, 0)));
  EXPECT_FALSE(buf.put(0, 3, make_input(0xBB, 0)));  // retransmit differs? keep first
  buf.put(1, 3, 0);
  EXPECT_EQ(player_byte(*buf.merged(3), 0), 0xAA);
}

TEST(InputBufferTest, HasAndPartialQueries) {
  InputBuffer buf;
  buf.put(1, 7, make_input(0, 0x5C));
  EXPECT_TRUE(buf.has(1, 7));
  EXPECT_FALSE(buf.has(0, 7));
  EXPECT_FALSE(buf.has(1, 8));
  EXPECT_EQ(buf.partial(1, 7), make_input(0, 0x5C));
  EXPECT_EQ(buf.partial(0, 7), 0);  // absent reads as the empty input
}

TEST(InputBufferTest, SparseFramesGrowOnDemand) {
  InputBuffer buf;
  buf.put(0, 1000, make_input(1, 0));
  EXPECT_TRUE(buf.has(0, 1000));
  EXPECT_FALSE(buf.has(0, 999));
  EXPECT_GE(buf.entries_in_memory(), 1000u);
}

TEST(InputBufferTest, TrimReclaimsAndRejectsStale) {
  InputBuffer buf;
  for (FrameNo f = 0; f < 100; ++f) {
    buf.put(0, f, 0);
    buf.put(1, f, 0);
  }
  buf.trim_below(50);
  EXPECT_EQ(buf.base(), 50);
  EXPECT_EQ(buf.entries_in_memory(), 50u);
  EXPECT_FALSE(buf.has(0, 49));
  EXPECT_FALSE(buf.put(0, 10, 0));  // stale retransmission counts as dup
  EXPECT_TRUE(buf.has(0, 50));
}

TEST(InputBufferTest, TrimPastEndAdvancesBase) {
  InputBuffer buf;
  buf.put(0, 0, 0);
  buf.trim_below(10);
  EXPECT_EQ(buf.base(), 10);
  EXPECT_EQ(buf.entries_in_memory(), 0u);
  EXPECT_TRUE(buf.put(0, 10, 0));
}

TEST(InputBufferTest, InvalidSitesRejected) {
  InputBuffer buf(2);
  EXPECT_FALSE(buf.put(-1, 0, 1));
  EXPECT_FALSE(buf.put(2, 0, 1));
  EXPECT_FALSE(buf.has(7, 0));
  EXPECT_EQ(buf.partial(-1, 0), 0);
}

TEST(InputBufferTest, MemoryStaysBoundedUnderSteadyState) {
  // The in-flight window pattern of the protocol: put a frame, consume an
  // older one, trim. Memory must not grow with total frames processed.
  InputBuffer buf;
  for (FrameNo f = 0; f < 10000; ++f) {
    buf.put(0, f, 0);
    buf.put(1, f, 0);
    if (f >= 6) buf.trim_below(f - 6);
  }
  EXPECT_LE(buf.entries_in_memory(), 8u);
}

TEST(InputBufferTest, FramesBeyondTheWindowCapIgnored) {
  // Defense in depth behind the wire decoder: a forged but in-wire-range
  // first_frame must not make the sparse map allocate an unbounded span.
  InputBuffer buf;
  buf.put(0, 0, 1);
  buf.put(0, InputBuffer::kMaxFrameWindow, 1);      // at the cap: stored
  buf.put(0, InputBuffer::kMaxFrameWindow + 1, 1);  // beyond: dropped
  buf.put(0, 1'000'000'000, 1);                     // absurd: dropped
  EXPECT_TRUE(buf.has(0, InputBuffer::kMaxFrameWindow));
  EXPECT_FALSE(buf.has(0, InputBuffer::kMaxFrameWindow + 1));
  EXPECT_FALSE(buf.has(0, 1'000'000'000));
  // The store is dense from the trim base, so the cap IS the memory
  // bound: no put() can make it exceed one window.
  EXPECT_LE(buf.entries_in_memory(), InputBuffer::kMaxFrameWindow + 1);
}

TEST(InputBufferTest, WindowCapFollowsTrim) {
  InputBuffer buf;
  buf.trim_below(1000);
  EXPECT_FALSE(buf.has(0, 1000 + InputBuffer::kMaxFrameWindow + 1));
  buf.put(0, 1000 + InputBuffer::kMaxFrameWindow + 1, 1);
  EXPECT_FALSE(buf.has(0, 1000 + InputBuffer::kMaxFrameWindow + 1));
  buf.put(0, 1000 + InputBuffer::kMaxFrameWindow, 1);
  EXPECT_TRUE(buf.has(0, 1000 + InputBuffer::kMaxFrameWindow));
}

}  // namespace
}  // namespace rtct::core
