// Wire-decoder fuzzing (ctest label: fuzz). Designed to run under the
// sanitize preset (ASan/UBSan) so memory and overflow bugs in the decode
// paths surface as hard failures, not silent corruption.
//
// Three parts:
//   1. replay the checked-in regression corpus from tests/corpus/ —
//      every file must decode (or be rejected) without a crash, and the
//      files flagged expect_reject at generation time must stay rejected;
//   2. structure-aware random fuzz of decode/encode round-trips;
//   3. ingest fuzz: decode-surviving buffers are fed through the protocol
//      state machines the way production does.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <vector>

#include "src/chaos/fuzz.h"

namespace rtct::chaos {
namespace {

// Set by CMake to the source-tree corpus directory.
#ifndef RTCT_CORPUS_DIR
#define RTCT_CORPUS_DIR "tests/corpus"
#endif

std::vector<std::uint8_t> read_file(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  *ok = static_cast<bool>(in);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(WireFuzzTest, CheckedInCorpusReplaysClean) {
  // The generated corpus is the source of truth for what should be on
  // disk; replaying the *files* (not the in-memory bytes) catches both
  // decoder regressions and a stale or hand-damaged corpus directory.
  const auto corpus = build_corpus();
  ASSERT_FALSE(corpus.empty());
  for (const CorpusEntry& e : corpus) {
    bool ok = false;
    const auto bytes = read_file(std::string(RTCT_CORPUS_DIR) + "/" + e.name, &ok);
    ASSERT_TRUE(ok) << e.name
                    << " missing from " RTCT_CORPUS_DIR
                       " — regenerate with: rtct_chaos gen-corpus tests/corpus";
    EXPECT_EQ(bytes, e.bytes) << e.name << " differs from the generator";
    const auto failure = e.kind == CorpusEntry::Kind::kReplay
                             ? check_replay_container(bytes, e.expect_reject)
                             : check_decoder(bytes);
    EXPECT_FALSE(failure.has_value()) << e.name << ": " << *failure;
  }
}

TEST(WireFuzzTest, CorpusCoversBothDecoders) {
  // The corpus must keep exercising both trust boundaries — losing the
  // replay-container half to a refactor would silently shrink coverage.
  std::size_t wire = 0;
  std::size_t replay = 0;
  std::size_t replay_rejects = 0;
  for (const CorpusEntry& e : build_corpus()) {
    if (e.kind == CorpusEntry::Kind::kReplay) {
      ++replay;
      if (e.expect_reject) ++replay_rejects;
    } else {
      ++wire;
    }
  }
  EXPECT_GT(wire, 20u);
  EXPECT_GE(replay, 10u);
  EXPECT_GE(replay_rejects, 8u);
}

TEST(WireFuzzTest, RandomStructureFuzz) {
  FuzzStats stats;
  const auto failure = fuzz_wire(/*seed=*/0xF022, /*iterations=*/50000, &stats);
  EXPECT_FALSE(failure.has_value()) << *failure;
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.rejected, 0u);
}

TEST(WireFuzzTest, SecondSeedRandomStructureFuzz) {
  // A second independent stream: cheap insurance against a single seed
  // happening to avoid some decode path.
  const auto failure = fuzz_wire(/*seed=*/0xBEE5, /*iterations=*/50000);
  EXPECT_FALSE(failure.has_value()) << *failure;
}

TEST(WireFuzzTest, StateMachineIngestFuzz) {
  const auto failure = fuzz_ingest(/*seed=*/0xF022, /*iterations=*/5000);
  EXPECT_FALSE(failure.has_value()) << *failure;
}

TEST(WireFuzzTest, ReplayContainerFuzz) {
  FuzzStats stats;
  const auto failure = fuzz_replay(/*seed=*/0x52504C, /*iterations=*/20000, &stats);
  EXPECT_FALSE(failure.has_value()) << *failure;
  // Both outcomes must actually occur or the fuzz is degenerate.
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.rejected, 0u);
}

TEST(WireFuzzTest, SecondSeedReplayContainerFuzz) {
  const auto failure = fuzz_replay(/*seed=*/0x2E72706C, /*iterations=*/20000);
  EXPECT_FALSE(failure.has_value()) << *failure;
}

}  // namespace
}  // namespace rtct::chaos
