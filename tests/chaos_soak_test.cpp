// The deterministic chaos soak (ctest labels: soak, slow).
//
// Runs 100+ distinct seeds through each topology — two-site, mesh,
// spectator — with seeded fault injection (loss bursts, reorder storms,
// duplication, latency spikes, asymmetric-path flips, config flaps, peer
// stalls, observer churn) and requires every machine-readable invariant
// to hold on every run. On failure the full minimized repro document is
// printed; replay it with `rtct_chaos replay` after saving it to a file.
//
// Everything runs on the virtual clock: ~17 ms of host CPU per case, and
// the same seed always produces byte-identical repro output (asserted
// below — determinism is itself part of the contract).
#include <gtest/gtest.h>

#include "src/chaos/fault_script.h"
#include "src/chaos/soak.h"

namespace rtct::chaos {
namespace {

constexpr std::uint64_t kFirstSeed = 1;
constexpr int kSeeds = 100;

class ChaosSoak : public ::testing::TestWithParam<Topology> {};

TEST_P(ChaosSoak, AllSeedsSatisfyAllInvariants) {
  const Topology topology = GetParam();
  int failures = 0;
  for (std::uint64_t seed = kFirstSeed; seed < kFirstSeed + kSeeds; ++seed) {
    const SoakOutcome o = run_soak_case(seed, topology);
    if (!o.passed()) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << " on " << topology_name(topology)
                    << ": " << o.violations.size() << " violation(s)\n"
                    << outcome_to_json(o);
    }
  }
  EXPECT_EQ(failures, 0);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, ChaosSoak,
                         ::testing::Values(Topology::kTwoSite, Topology::kMesh,
                                           Topology::kSpectator),
                         [](const auto& info) {
                           return std::string(topology_name(info.param));
                         });

TEST(ChaosSoakDeterminism, SameSeedYieldsByteIdenticalRepro) {
  for (const Topology t :
       {Topology::kTwoSite, Topology::kMesh, Topology::kSpectator}) {
    const std::string a = outcome_to_json(run_soak_case(17, t));
    const std::string b = outcome_to_json(run_soak_case(17, t));
    EXPECT_EQ(a, b) << topology_name(t);
  }
}

}  // namespace
}  // namespace rtct::chaos
