// The deterministic chaos soak (ctest labels: soak, slow).
//
// Runs 100+ distinct seeds through each topology — two-site, mesh,
// spectator — with seeded fault injection (loss bursts, reorder storms,
// duplication, latency spikes, asymmetric-path flips, config flaps, peer
// stalls, observer churn) and requires every machine-readable invariant
// to hold on every run. On failure the full minimized repro document is
// printed; replay it with `rtct_chaos replay` after saving it to a file.
//
// Everything runs on the virtual clock: ~17 ms of host CPU per case, and
// the same seed always produces byte-identical repro output (asserted
// below — determinism is itself part of the contract).
#include <gtest/gtest.h>

#include <memory>

#include "src/chaos/fault_script.h"
#include "src/chaos/soak.h"
#include "src/cores/registry.h"
#include "src/emu/machine.h"
#include "src/games/roms.h"

namespace rtct::chaos {
namespace {

constexpr std::uint64_t kFirstSeed = 1;
constexpr int kSeeds = 100;

class ChaosSoak : public ::testing::TestWithParam<Topology> {};

TEST_P(ChaosSoak, AllSeedsSatisfyAllInvariants) {
  const Topology topology = GetParam();
  int failures = 0;
  for (std::uint64_t seed = kFirstSeed; seed < kFirstSeed + kSeeds; ++seed) {
    const SoakOutcome o = run_soak_case(seed, topology);
    if (!o.passed()) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << " on " << topology_name(topology)
                    << ": " << o.violations.size() << " violation(s)\n"
                    << outcome_to_json(o);
    }
  }
  EXPECT_EQ(failures, 0);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, ChaosSoak,
                         ::testing::Values(Topology::kTwoSite, Topology::kMesh,
                                           Topology::kSpectator),
                         [](const auto& info) {
                           return std::string(topology_name(info.param));
                         });

// The same seeds, with both sites opted into rollback: every fault script
// the lockstep soak survives, the speculation/restore engine must survive
// too — including the rollback-twin invariant (confirmed history equals a
// straight-line replay, digest for digest).
class RollbackChaosSoak : public ::testing::TestWithParam<Topology> {};

TEST_P(RollbackChaosSoak, AllSeedsSatisfyAllInvariants) {
  const Topology topology = GetParam();
  int failures = 0;
  for (std::uint64_t seed = kFirstSeed; seed < kFirstSeed + kSeeds; ++seed) {
    FaultScript script = generate_fault_script(seed, topology);
    script.rollback = true;
    const SoakOutcome o = run_soak_case(script);
    if (!o.passed()) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << " on " << topology_name(topology)
                    << " (rollback): " << o.violations.size() << " violation(s)\n"
                    << outcome_to_json(o);
    }
  }
  EXPECT_EQ(failures, 0);
}

INSTANTIATE_TEST_SUITE_P(RollbackTopologies, RollbackChaosSoak,
                         ::testing::Values(Topology::kTwoSite, Topology::kSpectator),
                         [](const auto& info) {
                           return std::string(topology_name(info.param));
                         });

class EmulatorChaosSoak : public ::testing::TestWithParam<Topology> {};

TEST_P(EmulatorChaosSoak, DirtyPageDigestSurvivesChaosWithCrossCheck) {
  // The soak normally runs the cheap native game, which never exercises
  // the emulator's incremental v2 digest. Re-run a slice of seeds on an
  // ArcadeMachine with the full-rehash cross-check armed: every
  // state_digest(2) recomputes all 128 pages from scratch and any
  // disagreement with the dirty-page cache counts as a failure. Chaos is
  // exactly the load that would expose a missed-invalidation bug (stalls,
  // churned observers loading snapshots, handshake races).
  const Topology topology = GetParam();
  emu::set_state_digest_cross_check(true);
  int failures = 0;
  for (std::uint64_t seed = kFirstSeed; seed < kFirstSeed + 10; ++seed) {
    FaultScript script = generate_fault_script(seed, topology);
    testbed::ExperimentConfig cfg = lower_two_site(script);
    cfg.game_factory = [] { return games::make_machine("duel"); };
    const testbed::ExperimentResult r = testbed::run_experiment(cfg);
    const auto violations = check_two_site(cfg, r);
    if (!violations.empty()) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << " on " << topology_name(topology) << ": "
                    << violations.size() << " violation(s), first: "
                    << violations[0].invariant << " — " << violations[0].detail;
    }
  }
  emu::set_state_digest_cross_check(false);
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(emu::state_digest_cross_check_failures(), 0u)
      << "incremental digest disagreed with the full rehash";
}

TEST_P(EmulatorChaosSoak, FastAndReferenceInterpretersAgreeUnderChaos) {
  // Differential check under network chaos: alternate replicas between the
  // fast (predecoded / devirtualized / threaded-dispatch) interpreter and
  // the reference byte-fetch interpreter. The soak's per-frame state-hash
  // agreement invariant then *is* the equivalence assertion — any backend
  // divergence shows up as a two-site hash mismatch, and it is exercised
  // through snapshot load (observer churn), stalls, and handshake races
  // that the plain lockstep differential test never reaches.
  const Topology topology = GetParam();
  int failures = 0;
  for (std::uint64_t seed = kFirstSeed; seed < kFirstSeed + 8; ++seed) {
    FaultScript script = generate_fault_script(seed, topology);
    testbed::ExperimentConfig cfg = lower_two_site(script);
    auto counter = std::make_shared<int>(0);
    cfg.game_factory = [counter] {
      emu::MachineConfig mc;
      mc.reference_interpreter = ((*counter)++ % 2) == 1;
      return games::make_machine("duel", mc);
    };
    const testbed::ExperimentResult r = testbed::run_experiment(cfg);
    const auto violations = check_two_site(cfg, r);
    if (!violations.empty()) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << " on " << topology_name(topology)
                    << " (mixed backends): " << violations.size()
                    << " violation(s), first: " << violations[0].invariant
                    << " — " << violations[0].detail;
    }
  }
  EXPECT_EQ(failures, 0);
}

INSTANTIATE_TEST_SUITE_P(EmulatorTopologies, EmulatorChaosSoak,
                         ::testing::Values(Topology::kTwoSite, Topology::kSpectator),
                         [](const auto& info) {
                           return std::string(topology_name(info.param));
                         });

// The cross-core invariant: every fault script the soak generates also
// runs against an agent86 topology, with the incremental-digest
// cross-check armed and per-frame digest agreement required. Any
// behavioural dependency on the AC16 machine hiding in the sync layer —
// a hardcoded page count, a snapshot-size assumption, a digest-version
// special case — surfaces here as a two-site violation on a core that
// shares zero code with AC16's interpreter.
class Agent86ChaosSoak : public ::testing::TestWithParam<Topology> {};

TEST_P(Agent86ChaosSoak, EveryFaultScriptHoldsOnAnAgent86Topology) {
  const Topology topology = GetParam();
  const auto factory = [] { return cores::make_game("agent86:skirmish"); };
  emu::set_state_digest_cross_check(true);
  int failures = 0;
  for (std::uint64_t seed = kFirstSeed; seed < kFirstSeed + kSeeds; ++seed) {
    const FaultScript script = generate_fault_script(seed, topology);
    std::vector<Violation> violations;
    if (topology == Topology::kMesh) {
      testbed::MeshExperimentConfig cfg = lower_mesh(script);
      cfg.game_factory = factory;
      const auto r = testbed::run_mesh_experiment(cfg);
      // Fault-free twin as the pacing baseline, as run_soak_case does —
      // mesh re-convergence is judged against the same script minus its
      // faults, not against the nominal period.
      FaultScript clean = script;
      clean.faults.clear();
      testbed::MeshExperimentConfig ref_cfg = lower_mesh(clean);
      ref_cfg.game_factory = factory;
      const auto ref = testbed::run_mesh_experiment(ref_cfg);
      violations = check_mesh(cfg, r, &ref);
    } else {
      testbed::ExperimentConfig cfg = lower_two_site(script);
      cfg.game_factory = factory;
      violations = check_two_site(cfg, testbed::run_experiment(cfg));
    }
    if (!violations.empty()) {
      ++failures;
      ADD_FAILURE() << "seed " << seed << " on " << topology_name(topology)
                    << " (agent86): " << violations.size()
                    << " violation(s), first: " << violations[0].invariant
                    << " — " << violations[0].detail;
    }
  }
  emu::set_state_digest_cross_check(false);
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(emu::state_digest_cross_check_failures(), 0u)
      << "agent86 incremental digest disagreed with the full rehash";
}

INSTANTIATE_TEST_SUITE_P(Agent86Topologies, Agent86ChaosSoak,
                         ::testing::Values(Topology::kTwoSite, Topology::kMesh,
                                           Topology::kSpectator),
                         [](const auto& info) {
                           return std::string(topology_name(info.param));
                         });

TEST(ChaosSoakDeterminism, SameSeedYieldsByteIdenticalRepro) {
  for (const Topology t :
       {Topology::kTwoSite, Topology::kMesh, Topology::kSpectator}) {
    const std::string a = outcome_to_json(run_soak_case(17, t));
    const std::string b = outcome_to_json(run_soak_case(17, t));
    EXPECT_EQ(a, b) << topology_name(t);
  }
}

}  // namespace
}  // namespace rtct::chaos
