// Unit tests for RttEstimator — Jacobson/Karels SRTT+RTTVAR and the
// derived retransmission timeout (RFC 6298 arithmetic, integer Dur).
#include <gtest/gtest.h>

#include "src/core/rtt.h"

namespace rtct::core {
namespace {

TEST(RttEstimatorTest, StartsUnsampled) {
  RttEstimator e;
  EXPECT_FALSE(e.has_sample());
  EXPECT_EQ(e.sample_count(), 0u);
  EXPECT_EQ(e.srtt(), 0);
  EXPECT_EQ(e.rttvar(), 0);
}

TEST(RttEstimatorTest, FirstSampleSeeds) {
  RttEstimator e;
  e.sample(milliseconds(100));
  EXPECT_TRUE(e.has_sample());
  EXPECT_EQ(e.sample_count(), 1u);
  EXPECT_EQ(e.srtt(), milliseconds(100));
  EXPECT_EQ(e.rttvar(), milliseconds(50));           // sample / 2
  EXPECT_EQ(e.rto(), milliseconds(300));             // srtt + 4*rttvar
}

TEST(RttEstimatorTest, ZeroIsARealSample) {
  // The regression this class exists for: 0 ns (loopback) must count as a
  // measurement, not as "unseeded".
  RttEstimator e;
  e.sample(0);
  EXPECT_TRUE(e.has_sample());
  EXPECT_EQ(e.srtt(), 0);
  // A later spike is smoothed with the 1/8 gain, not adopted as a seed.
  e.sample(milliseconds(80));
  EXPECT_EQ(e.sample_count(), 2u);
  EXPECT_EQ(e.srtt(), milliseconds(80) / 8);
}

TEST(RttEstimatorTest, NegativeSamplesIgnored) {
  RttEstimator e;
  e.sample(-milliseconds(5));
  EXPECT_FALSE(e.has_sample());
  e.sample(milliseconds(20));
  e.sample(-1);
  EXPECT_EQ(e.sample_count(), 1u);
  EXPECT_EQ(e.srtt(), milliseconds(20));
}

TEST(RttEstimatorTest, JacobsonGains) {
  RttEstimator e;
  e.sample(milliseconds(100));  // seed: srtt=100, rttvar=50
  e.sample(milliseconds(60));
  // rttvar = (3*50 + |100-60|) / 4 = 47.5 ms; srtt = (7*100 + 60)/8 = 95 ms
  EXPECT_EQ(e.rttvar(), (milliseconds(150) + milliseconds(40)) / 4);
  EXPECT_EQ(e.srtt(), (milliseconds(700) + milliseconds(60)) / 8);
}

TEST(RttEstimatorTest, ConvergesOnSteadyInput) {
  RttEstimator e;
  for (int i = 0; i < 200; ++i) e.sample(milliseconds(40));
  EXPECT_NEAR(to_ms(e.srtt()), 40.0, 0.5);
  EXPECT_LT(e.rttvar(), milliseconds(1));  // variance decays to ~0
}

TEST(RttEstimatorTest, RtoClampedToMin) {
  RttEstimator e(milliseconds(10), seconds(2));
  for (int i = 0; i < 200; ++i) e.sample(microseconds(100));
  EXPECT_LT(e.srtt() + 4 * e.rttvar(), milliseconds(10));
  EXPECT_EQ(e.rto(), milliseconds(10));  // floor: never retransmit too eagerly
}

TEST(RttEstimatorTest, RtoClampedToMax) {
  RttEstimator e(milliseconds(10), seconds(2));
  e.sample(seconds(5));  // satellite link from hell
  EXPECT_EQ(e.rto(), seconds(2));
}

TEST(RttEstimatorTest, VarianceTracksJitter) {
  // Alternating 20/60 ms samples: srtt settles near 40 ms and rttvar stays
  // well above zero, pushing the RTO safely past the worst sample.
  RttEstimator e;
  for (int i = 0; i < 200; ++i) e.sample(milliseconds(i % 2 == 0 ? 20 : 60));
  EXPECT_NEAR(to_ms(e.srtt()), 40.0, 8.0);
  EXPECT_GT(e.rttvar(), milliseconds(10));
  EXPECT_GT(e.rto(), milliseconds(60));
}

}  // namespace
}  // namespace rtct::core
