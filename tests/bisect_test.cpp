// Tests for the divergence bisector (src/core/bisect.h): given two
// recordings of nominally the same session, name the first divergent frame
// and the exact 256 B page(s) that differ — the offline root-causing tool
// the RTCTRPL2 keyframes exist for.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/random.h"
#include "src/core/bisect.h"
#include "src/core/metrics.h"
#include "src/core/replay.h"
#include "src/emu/machine.h"
#include "src/games/roms.h"
#include "src/testbed/experiment.h"

namespace rtct::core {
namespace {

GameFactory torture_factory() {
  return [] {
    return std::unique_ptr<emu::IDeterministicGame>(games::make_machine("torture"));
  };
}

/// Records a torture session with embedded keyframes; inputs come from
/// `rng`, optionally overridden from `override_from` on by `override_bit`
/// (to build input-divergent twins off one stream).
Replay record_torture(int frames, int interval, Rng rng, FrameNo override_from = -1,
                      InputWord override_bit = 0) {
  auto m = games::make_machine("torture");
  SyncConfig cfg;
  cfg.digest_v2 = true;
  cfg.replay_keyframe_interval = interval;
  Replay rec(m->content_id(), cfg);
  for (int f = 0; f < frames; ++f) {
    auto input = static_cast<InputWord>(rng.next_u64());
    if (override_from >= 0 && f >= override_from) input ^= override_bit;
    m->step_frame(input);
    rec.record(input);
    if (rec.keyframe_due()) rec.record_keyframe(*m);
  }
  return rec;
}

/// Forges a single-byte RAM mutation into the embedded keyframe at
/// `frame`: flips one byte of `page`, then restamps the keyframe digest so
/// the snapshot is internally consistent (the divergence evidence is the
/// digest leaving the deterministic line, not a corrupt blob).
void mutate_keyframe(Replay* r, FrameNo frame, int page) {
  for (ReplayKeyframe& kf : r->keyframes_mutable()) {
    if (kf.frame != frame) continue;
    const std::size_t header = kf.state.size() - (0x10000 - emu::kRamBase);
    kf.state[header + static_cast<std::size_t>(page) * emu::kPageSize + 3] ^= 0x01;
    auto scratch = games::make_machine("torture");
    ASSERT_TRUE(scratch->load_state(kf.state));
    kf.digest = scratch->state_digest(r->digest_version());
    return;
  }
  FAIL() << "no keyframe at frame " << frame;
}

TEST(BisectTest, MutatedKeyframeNamesExactFrameAndPage) {
  // One byte of one embedded snapshot differs (frame 449, page 23). The
  // bisector must name exactly that frame, attribute side "b" (the
  // deterministic re-simulation agrees with A), and name exactly that
  // 256 B page with its real RAM address.
  const Replay a = record_torture(600, 150, Rng(11));
  Replay b = a;
  mutate_keyframe(&b, 449, 23);

  const BisectReport rep = bisect_replays(a, b, torture_factory());
  EXPECT_EQ(rep.verdict, "diverged");
  EXPECT_EQ(rep.first_divergent_frame, 449);
  EXPECT_EQ(rep.first_input_divergence, -1);
  EXPECT_EQ(rep.diverged_side, "b");
  EXPECT_EQ(rep.keyframe_used, 299);  // last agreeing keyframe
  EXPECT_EQ(rep.resimulated_frames, 150);
  ASSERT_EQ(rep.pages.size(), 1u);
  EXPECT_EQ(rep.pages[0].page, 23);
  EXPECT_EQ(rep.pages[0].addr, emu::kRamBase + 23u * emu::kPageSize);
  EXPECT_NE(rep.pages[0].digest_a, rep.pages[0].digest_b);

  // Mutating A instead attributes side "a" at the same coordinates.
  Replay a2 = a;
  mutate_keyframe(&a2, 449, 23);
  const BisectReport rep2 = bisect_replays(a2, a, torture_factory());
  EXPECT_EQ(rep2.verdict, "diverged");
  EXPECT_EQ(rep2.first_divergent_frame, 449);
  EXPECT_EQ(rep2.diverged_side, "a");
}

TEST(BisectTest, IdenticalTwinsGetCleanVerdict) {
  const Replay a = record_torture(600, 150, Rng(12));
  const BisectReport rep = bisect_replays(a, a, torture_factory());
  EXPECT_EQ(rep.verdict, "identical");
  EXPECT_EQ(rep.first_divergent_frame, -1);
  EXPECT_EQ(rep.first_input_divergence, -1);
  EXPECT_TRUE(rep.pages.empty());
  EXPECT_EQ(rep.common_frames, 600);
}

TEST(BisectTest, InputDivergenceSingleStepsToTheExactFrame) {
  // The input logs split at frame 317 (a flipped button bit): per-frame
  // evidence exists on both sides, so the bisector restores the last
  // agreeing keyframe (299) and single-steps to the exact frame.
  const Replay a = record_torture(600, 150, Rng(13));
  const Replay b = record_torture(600, 150, Rng(13), 317, 0x0004);
  const BisectReport rep = bisect_replays(a, b, torture_factory());
  EXPECT_EQ(rep.verdict, "diverged");
  EXPECT_EQ(rep.first_input_divergence, 317);
  EXPECT_EQ(rep.first_divergent_frame, 317);
  EXPECT_EQ(rep.diverged_side, "input");
  EXPECT_EQ(rep.keyframe_used, 299);
  EXPECT_LE(rep.resimulated_frames, 2 * (317 - 299));
  EXPECT_FALSE(rep.pages.empty());
}

TEST(BisectTest, ContentMismatchIsAnError) {
  const Replay a = record_torture(100, 50, Rng(14));
  auto duel = games::make_machine("duel");
  SyncConfig cfg;
  Replay b(duel->content_id(), cfg);
  const BisectReport rep = bisect_replays(a, b, torture_factory());
  EXPECT_EQ(rep.verdict, "error");
  EXPECT_FALSE(rep.error.empty());
}

TEST(BisectTest, ReplayVsTimelineFindsTamperedFrame) {
  // Archive the per-frame digests of the session, then corrupt the
  // archived hash of frame 387 only: every keyframe still agrees, so the
  // bisector must fall back to a full gap-by-gap audit — and still name
  // the exact frame, with the timeline ("b") as the side that left the
  // line.
  const Replay a = record_torture(500, 150, Rng(15));
  FrameTimeline timeline;
  auto m = games::make_machine("torture");
  ASSERT_TRUE(a.apply(*m,
                      [&](FrameNo f, std::uint64_t h) {
                        FrameRecord rec;
                        rec.frame = f;
                        rec.state_hash = h;
                        timeline.add(rec);
                      },
                      /*digest_version=*/2));

  const BisectReport clean = bisect_replay_vs_timeline(a, timeline, 2, torture_factory());
  EXPECT_EQ(clean.verdict, "identical");

  FrameTimeline tampered = timeline;
  tampered.set_state_hash(387, 0xBAD0BAD0BAD0BAD0ull);
  const BisectReport rep = bisect_replay_vs_timeline(a, tampered, 2, torture_factory());
  EXPECT_EQ(rep.verdict, "diverged");
  EXPECT_EQ(rep.first_divergent_frame, 387);
  EXPECT_EQ(rep.diverged_side, "b");
  EXPECT_EQ(rep.keyframe_used, 299);       // restore point of the bad gap
  EXPECT_LE(rep.resimulated_frames, 387);  // full audit, minus keyframe frames
  EXPECT_TRUE(rep.pages.empty());          // a timeline carries no state

  // A real desync is monotone — every archived hash from 387 on differs —
  // so keyframe 449 disagrees and brackets the divergence to one gap of
  // re-simulation.
  FrameTimeline desynced = timeline;
  for (FrameNo f = 387; f < 500; ++f) {
    desynced.set_state_hash(f, 0xBAD0000000000000ull + static_cast<std::uint64_t>(f));
  }
  const BisectReport fast = bisect_replay_vs_timeline(a, desynced, 2, torture_factory());
  EXPECT_EQ(fast.verdict, "diverged");
  EXPECT_EQ(fast.first_divergent_frame, 387);
  EXPECT_EQ(fast.diverged_side, "b");
  EXPECT_EQ(fast.keyframe_used, 299);      // keyframe evidence bracketed it
  EXPECT_LE(fast.resimulated_frames, 150); // ...to one interval of resim
}

TEST(BisectTest, RollbackRecordingBisectsOverConfirmedFramesOnly) {
  // A rollback session's recording carries only confirmed frames and
  // confirmed-state keyframes; the bisector needs no mode flag — forging a
  // mutation into a confirmed keyframe is found exactly like lockstep.
  testbed::ExperimentConfig cfg;
  cfg.frames = 300;
  cfg.sync.rollback = true;
  cfg.sync.replay_keyframe_interval = 80;
  cfg.set_rtt(milliseconds(40));
  const auto r = testbed::run_experiment(cfg);
  ASSERT_TRUE(r.converged());
  ASSERT_TRUE(r.site[0].rollback_mode);
  const Replay& a = r.site[0].replay;
  ASSERT_GE(a.keyframes().size(), 2u);
  for (const ReplayKeyframe& kf : a.keyframes()) {
    ASSERT_LT(kf.frame, a.frames());  // confirmed history only
  }

  const auto factory = [&cfg]() -> std::unique_ptr<emu::IDeterministicGame> {
    return games::make_machine(cfg.game);
  };
  const BisectReport clean = bisect_replays(a, r.site[1].replay, factory);
  EXPECT_EQ(clean.verdict, "identical");

  Replay b = a;
  const FrameNo victim = b.keyframes().back().frame;
  ReplayKeyframe& kf = b.keyframes_mutable().back();
  const std::size_t header = kf.state.size() - (0x10000 - emu::kRamBase);
  kf.state[header + 5 * emu::kPageSize] ^= 0x80;
  auto scratch = games::make_machine(cfg.game);
  ASSERT_TRUE(scratch->load_state(kf.state));
  kf.digest = scratch->state_digest(b.digest_version());

  const BisectReport rep = bisect_replays(a, b, factory);
  EXPECT_EQ(rep.verdict, "diverged");
  EXPECT_EQ(rep.first_divergent_frame, victim);
  EXPECT_EQ(rep.diverged_side, "b");
  ASSERT_EQ(rep.pages.size(), 1u);
  EXPECT_EQ(rep.pages[0].page, 5);
}

TEST(BisectTest, ReportJsonIsDeterministic) {
  const Replay a = record_torture(600, 150, Rng(16));
  Replay b = a;
  mutate_keyframe(&b, 299, 7);
  const std::string j1 = bisect_report_to_json(bisect_replays(a, b, torture_factory()));
  const std::string j2 = bisect_report_to_json(bisect_replays(a, b, torture_factory()));
  EXPECT_EQ(j1, j2);
  EXPECT_NE(j1.find("\"schema\":\"rtct.bisect.v1\""), std::string::npos);
  EXPECT_NE(j1.find("\"first_divergent_frame\":299"), std::string::npos);
  EXPECT_NE(j1.find("\"page\":7"), std::string::npos);
}

TEST(BisectTest, NoKeyframesFallsBackToGenesisResimulation) {
  // v1-style recordings (no keyframes) still bisect — from genesis, with
  // per-frame stepping once the inputs split.
  auto m1 = games::make_machine("torture");
  auto m2 = games::make_machine("torture");
  SyncConfig cfg;
  cfg.replay_keyframe_interval = 0;
  Replay a(m1->content_id(), cfg);
  Replay b(m2->content_id(), cfg);
  Rng rng(17);
  for (int f = 0; f < 200; ++f) {
    const auto input = static_cast<InputWord>(rng.next_u64());
    a.record(input);
    b.record(f >= 123 ? static_cast<InputWord>(input ^ 1) : input);
  }
  const BisectReport rep = bisect_replays(a, b, torture_factory());
  EXPECT_EQ(rep.verdict, "diverged");
  EXPECT_EQ(rep.first_input_divergence, 123);
  EXPECT_EQ(rep.first_divergent_frame, 123);
  EXPECT_EQ(rep.keyframe_used, -1);
  EXPECT_EQ(rep.diverged_side, "input");
}

}  // namespace
}  // namespace rtct::core
