// Unit tests for the network substrate: Netem model, simulated links,
// and the real UDP socket wrapper (loopback).
#include <gtest/gtest.h>

#include <vector>

#include "src/net/netem.h"
#include "src/net/sim_network.h"
#include "src/net/udp_socket.h"
#include "src/sim/simulator.h"

namespace rtct::net {
namespace {

// ---- NetemModel -------------------------------------------------------------

TEST(NetemModelTest, PerfectLinkDeliversAtExactDelay) {
  NetemConfig cfg;
  cfg.delay = milliseconds(30);
  NetemModel model(cfg, Rng(1));
  for (int i = 0; i < 100; ++i) {
    const auto v = model.offer(milliseconds(i), 100);
    ASSERT_TRUE(v.delivered);
    EXPECT_EQ(v.arrival, milliseconds(i) + milliseconds(30));
    EXPECT_FALSE(v.duplicate);
    model.on_arrival();
  }
  EXPECT_EQ(model.stats().packets_delivered, 100u);
  EXPECT_EQ(model.stats().dropped_loss, 0u);
}

TEST(NetemModelTest, LossRateApproximatesConfig) {
  NetemConfig cfg;
  cfg.loss = 0.25;
  NetemModel model(cfg, Rng(2));
  int dropped = 0;
  for (int i = 0; i < 10000; ++i) {
    if (!model.offer(0, 64).delivered) ++dropped;
  }
  EXPECT_NEAR(dropped / 10000.0, 0.25, 0.02);
  EXPECT_EQ(model.stats().dropped_loss, static_cast<std::uint64_t>(dropped));
}

TEST(NetemModelTest, DuplicationProducesSecondCopy) {
  NetemConfig cfg;
  cfg.duplicate = 0.5;
  NetemModel model(cfg, Rng(3));
  int dups = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto v = model.offer(0, 64);
    ASSERT_TRUE(v.delivered);
    dups += v.duplicate;
  }
  EXPECT_NEAR(dups / 4000.0, 0.5, 0.04);
}

TEST(NetemModelTest, JitterSpreadsArrivalsButNeverNegative) {
  NetemConfig cfg;
  cfg.delay = milliseconds(10);
  cfg.jitter = milliseconds(8);
  NetemModel model(cfg, Rng(4));
  bool saw_early = false, saw_late = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = model.offer(milliseconds(100), 64);
    ASSERT_TRUE(v.delivered);
    ASSERT_GE(v.arrival, milliseconds(100));  // time travel forbidden
    saw_early = saw_early || v.arrival < milliseconds(100) + milliseconds(8);
    saw_late = saw_late || v.arrival > milliseconds(100) + milliseconds(12);
  }
  EXPECT_TRUE(saw_early);
  EXPECT_TRUE(saw_late);
}

TEST(NetemModelTest, ReorderHoldsPacketsBack) {
  NetemConfig cfg;
  cfg.delay = milliseconds(10);
  cfg.reorder = 1.0;  // every packet
  cfg.reorder_extra = milliseconds(7);
  NetemModel model(cfg, Rng(5));
  const auto v = model.offer(0, 64);
  EXPECT_EQ(v.arrival, milliseconds(17));
  EXPECT_EQ(model.stats().reordered, 1u);
}

TEST(NetemModelTest, RateLimitSerializesBackToBack) {
  NetemConfig cfg;
  cfg.rate_bps = 8000;  // 1 byte per millisecond
  NetemModel model(cfg, Rng(6));
  const auto first = model.offer(0, 10);   // finishes serializing at 10ms
  const auto second = model.offer(0, 10);  // queued behind: 20ms
  EXPECT_EQ(first.arrival, milliseconds(10));
  EXPECT_EQ(second.arrival, milliseconds(20));
  // After the link drains, a later packet is not penalized.
  const auto third = model.offer(milliseconds(100), 10);
  EXPECT_EQ(third.arrival, milliseconds(110));
}

TEST(NetemModelTest, QueueLimitTailDrops) {
  NetemConfig cfg;
  cfg.delay = milliseconds(50);
  cfg.queue_limit = 3;
  NetemModel model(cfg, Rng(7));
  int delivered = 0;
  for (int i = 0; i < 5; ++i) delivered += model.offer(0, 64).delivered;
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(model.stats().dropped_queue, 2u);
  // Draining in-flight packets frees queue slots.
  for (int i = 0; i < 3; ++i) model.on_arrival();
  EXPECT_TRUE(model.offer(milliseconds(60), 64).delivered);
}

TEST(NetemModelTest, ForRttSplitsDelayPerDirection) {
  const auto cfg = NetemConfig::for_rtt(milliseconds(140));
  EXPECT_EQ(cfg.delay, milliseconds(70));
  EXPECT_EQ(cfg.loss, 0.0);
}

TEST(NetemModelTest, DeterministicForSeed) {
  NetemConfig cfg;
  cfg.delay = milliseconds(10);
  cfg.jitter = milliseconds(5);
  cfg.loss = 0.1;
  NetemModel a(cfg, Rng(42)), b(cfg, Rng(42));
  for (int i = 0; i < 500; ++i) {
    const auto va = a.offer(i * 1000, 64);
    const auto vb = b.offer(i * 1000, 64);
    ASSERT_EQ(va.delivered, vb.delivered);
    ASSERT_EQ(va.arrival, vb.arrival);
  }
}

// ---- SimDuplexLink ----------------------------------------------------------

TEST(SimLinkTest, DatagramCrossesWithConfiguredDelay) {
  sim::Simulator sim;
  SimDuplexLink link(sim, NetemConfig::for_rtt(milliseconds(100)));
  const std::uint8_t payload[] = {1, 2, 3};
  link.a().send(payload);
  EXPECT_FALSE(link.b().try_recv().has_value());  // not yet
  sim.run();
  EXPECT_EQ(sim.now(), milliseconds(50));
  const auto got = link.b().try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 3u);
  EXPECT_EQ((*got)[2], 3);
}

TEST(SimLinkTest, DirectionsAreIndependent) {
  sim::Simulator sim;
  NetemConfig fast;
  fast.delay = milliseconds(5);
  NetemConfig slow;
  slow.delay = milliseconds(80);
  SimDuplexLink link(sim, fast, slow);
  const std::uint8_t x[] = {9};
  link.a().send(x);  // a->b: fast
  link.b().send(x);  // b->a: slow
  sim.run_until(milliseconds(10));
  EXPECT_TRUE(link.b().try_recv().has_value());
  EXPECT_FALSE(link.a().try_recv().has_value());
  sim.run();
  EXPECT_TRUE(link.a().try_recv().has_value());
}

TEST(SimLinkTest, ArrivalTriggerFires) {
  sim::Simulator sim;
  SimDuplexLink link(sim, NetemConfig::for_rtt(milliseconds(20)));
  bool woken = false;
  struct Fn {
    static sim::Task run(SimEndpoint& ep, bool& flag) {
      co_await ep.arrival_trigger().wait();
      flag = ep.try_recv().has_value();
    }
  };
  sim.spawn(Fn::run(link.b(), woken));
  const std::uint8_t payload[] = {7};
  link.a().send(payload);
  sim.run();
  EXPECT_TRUE(woken);
}

TEST(SimLinkTest, FifoOrderWithoutReordering) {
  sim::Simulator sim;
  SimDuplexLink link(sim, NetemConfig::for_rtt(milliseconds(30)));
  for (std::uint8_t i = 0; i < 10; ++i) {
    const std::uint8_t payload[] = {i};
    link.a().send(payload);
  }
  sim.run();
  for (std::uint8_t i = 0; i < 10; ++i) {
    const auto got = link.b().try_recv();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ((*got)[0], i);
  }
}

TEST(SimLinkTest, TxStatsCount) {
  sim::Simulator sim;
  NetemConfig lossy;
  lossy.loss = 1.0;
  SimDuplexLink link(sim, lossy, NetemConfig{});
  const std::uint8_t payload[] = {1, 2};
  link.a().send(payload);
  link.a().send(payload);
  sim.run();
  EXPECT_EQ(link.a().tx_stats().packets_offered, 2u);
  EXPECT_EQ(link.a().tx_stats().dropped_loss, 2u);
  EXPECT_FALSE(link.b().try_recv().has_value());
}

// ---- UdpSocket (loopback) ----------------------------------------------------

TEST(UdpSocketTest, LoopbackRoundTrip) {
  UdpSocket a("127.0.0.1", 0);
  UdpSocket b("127.0.0.1", 0);
  ASSERT_TRUE(a.valid()) << a.last_error();
  ASSERT_TRUE(b.valid()) << b.last_error();
  ASSERT_NE(a.local_port(), 0);
  ASSERT_TRUE(a.connect_peer("127.0.0.1", b.local_port()));
  ASSERT_TRUE(b.connect_peer("127.0.0.1", a.local_port()));

  const std::uint8_t payload[] = {0xDE, 0xAD, 0xBE, 0xEF};
  a.send(payload);
  ASSERT_TRUE(b.wait_readable(seconds(1)));
  const auto got = b.try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 4u);
  EXPECT_EQ((*got)[0], 0xDE);
  EXPECT_EQ(a.datagrams_sent(), 1u);
  EXPECT_EQ(b.datagrams_received(), 1u);
}

TEST(UdpSocketTest, TryRecvOnEmptySocketReturnsNothing) {
  UdpSocket s("127.0.0.1", 0);
  ASSERT_TRUE(s.valid());
  EXPECT_FALSE(s.try_recv().has_value());
  EXPECT_FALSE(s.wait_readable(milliseconds(1)));
}

TEST(UdpSocketTest, InvalidBindAddressFails) {
  UdpSocket s("not an ip", 0);
  EXPECT_FALSE(s.valid());
  EXPECT_FALSE(s.last_error().empty());
}

TEST(UdpSocketTest, UnconnectedSendToRecvFrom) {
  UdpSocket server("127.0.0.1", 0);
  UdpSocket client_a("127.0.0.1", 0);
  UdpSocket client_b("127.0.0.1", 0);
  ASSERT_TRUE(client_a.connect_peer("127.0.0.1", server.local_port()));
  ASSERT_TRUE(client_b.connect_peer("127.0.0.1", server.local_port()));

  const std::uint8_t ping_a[] = {0xA};
  const std::uint8_t ping_b[] = {0xB};
  client_a.send(ping_a);
  client_b.send(ping_b);

  // Server sees both datagrams with distinct sender addresses and can
  // reply to each individually.
  UdpAddress addr_a{}, addr_b{};
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(server.wait_readable(seconds(1)));
    auto got = server.recv_from();
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(got->first.size(), 1u);
    if (got->first[0] == 0xA) addr_a = got->second;
    if (got->first[0] == 0xB) addr_b = got->second;
  }
  ASSERT_NE(addr_a, addr_b);
  EXPECT_FALSE(addr_a.to_string().empty());
  EXPECT_NE(addr_a.to_string().find("127.0.0.1:"), std::string::npos);

  const std::uint8_t reply[] = {0xCC};
  server.send_to(addr_a, reply);
  ASSERT_TRUE(client_a.wait_readable(seconds(1)));
  EXPECT_TRUE(client_a.try_recv().has_value());
  EXPECT_FALSE(client_b.wait_readable(milliseconds(50)));  // b got nothing
}

TEST(NetemModelTest, SetConfigSwapsConditionsMidRun) {
  NetemConfig fast;
  fast.delay = milliseconds(5);
  NetemModel model(fast, Rng(1));
  EXPECT_EQ(model.offer(0, 64).arrival, milliseconds(5));
  NetemConfig slow;
  slow.delay = milliseconds(90);
  model.set_config(slow);
  EXPECT_EQ(model.offer(0, 64).arrival, milliseconds(90));
  EXPECT_EQ(model.stats().packets_offered, 2u);  // stats carry over
}

TEST(UdpSocketTest, EmptyDatagramIsDeliverable) {
  UdpSocket a("127.0.0.1", 0);
  UdpSocket b("127.0.0.1", 0);
  ASSERT_TRUE(a.connect_peer("127.0.0.1", b.local_port()));
  a.send({});
  ASSERT_TRUE(b.wait_readable(seconds(1)));
  const auto got = b.try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

}  // namespace
}  // namespace rtct::net
