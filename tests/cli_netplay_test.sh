#!/bin/sh
# CLI validation regressions for rtct_netplay (and rtct_relayd): every
# malformed numeric flag that atoi used to swallow silently must now be
# rejected with a non-zero exit and a diagnostic on stderr, and valid
# invocations must still get past argument parsing.
#
# Usage: cli_netplay_test.sh <path-to-rtct_netplay> <path-to-rtct_relayd>
set -u

NETPLAY="$1"
RELAYD="$2"
fails=0

# expect_reject <description> <grep-pattern> -- <args...>
# The command must exit non-zero AND print a matching diagnostic.
expect_reject() {
  desc="$1"; pattern="$2"; shift 3
  out=$("$@" 2>&1)
  code=$?
  if [ "$code" -eq 0 ]; then
    echo "FAIL: $desc: expected non-zero exit, got 0"
    fails=$((fails + 1))
  elif ! printf '%s' "$out" | grep -q "$pattern"; then
    echo "FAIL: $desc: diagnostic missing /$pattern/ in: $out"
    fails=$((fails + 1))
  else
    echo "ok: $desc"
  fi
}

# --- rtct_netplay: port parsing ---------------------------------------------
expect_reject "negative --bind port" "bad --bind" -- \
  "$NETPLAY" --site 0 --peer 127.0.0.1:7000 --bind -5 --frames 10
expect_reject "overflowing --bind port" "bad --bind" -- \
  "$NETPLAY" --site 0 --peer 127.0.0.1:7000 --bind 70000 --frames 10
expect_reject "non-numeric --bind port" "bad --bind" -- \
  "$NETPLAY" --site 0 --peer 127.0.0.1:7000 --bind 70junk --frames 10
expect_reject "negative --spectator-port" "bad --spectator-port" -- \
  "$NETPLAY" --site 0 --peer 127.0.0.1:7000 --spectator-port -1
expect_reject "zero --spectator-port" "bad --spectator-port" -- \
  "$NETPLAY" --site 0 --peer 127.0.0.1:7000 --spectator-port 0
expect_reject "negative port inside --peer" "bad --peer" -- \
  "$NETPLAY" --site 0 --peer 127.0.0.1:-7000 --frames 10
expect_reject "garbage port inside --peer" "bad --peer" -- \
  "$NETPLAY" --site 0 --peer 127.0.0.1:port --frames 10

# --- rtct_netplay: --input-delay bounds -------------------------------------
expect_reject "negative --input-delay" "bad --input-delay" -- \
  "$NETPLAY" --site 0 --peer 127.0.0.1:7000 --mode rollback --input-delay -3
expect_reject "--input-delay beyond the rollback ring" "exceeds the rollback ring" -- \
  "$NETPLAY" --site 0 --peer 127.0.0.1:7000 --mode rollback --input-delay 31
expect_reject "--input-delay without rollback mode" "only meaningful" -- \
  "$NETPLAY" --site 0 --peer 127.0.0.1:7000 --input-delay 2

# --- rtct_netplay: misc strictness ------------------------------------------
expect_reject "non-numeric --site" "bad --site" -- \
  "$NETPLAY" --site abc --peer 127.0.0.1:7000
expect_reject "out-of-range --site" "bad --site" -- \
  "$NETPLAY" --site 2 --peer 127.0.0.1:7000
expect_reject "zero --frames" "bad --frames" -- \
  "$NETPLAY" --site 0 --peer 127.0.0.1:7000 --frames 0
expect_reject "--relay with both --create and --join" "exactly one of" -- \
  "$NETPLAY" --relay 127.0.0.1:7100 --create --join 3
expect_reject "--relay with neither role" "exactly one of" -- \
  "$NETPLAY" --relay 127.0.0.1:7100
expect_reject "bad --join conn id" "bad --join" -- \
  "$NETPLAY" --relay 127.0.0.1:7100 --join 0

# --- rtct_relayd -------------------------------------------------------------
expect_reject "relayd negative --port" "bad --port" -- \
  "$RELAYD" --port -1 --run-for 1
expect_reject "relayd overflowing --port" "bad --port" -- \
  "$RELAYD" --port 65536 --run-for 1
expect_reject "relayd zero --shards" "bad --shards" -- \
  "$RELAYD" --shards 0 --run-for 1
expect_reject "relayd non-numeric --idle-timeout-ms" "bad --idle-timeout-ms" -- \
  "$RELAYD" --idle-timeout-ms soon --run-for 1

# A valid invocation must make it past parsing: --input-delay at the exact
# ring bound (30 = rollback_window - 2) is accepted, so the failure we see
# is the (expected, fast) inability to reach the dummy peer — which exits
# non-zero but crucially without any argument diagnostic.
out=$("$NETPLAY" --site 0 --peer 256.0.0.1:7000 --mode rollback --input-delay 30 2>&1)
if printf '%s' "$out" | grep -q "bad --input-delay\|exceeds"; then
  echo "FAIL: boundary --input-delay 30 was wrongly rejected: $out"
  fails=$((fails + 1))
else
  echo "ok: boundary --input-delay accepted"
fi

if [ "$fails" -ne 0 ]; then
  echo "$fails CLI validation check(s) failed"
  exit 1
fi
echo "all CLI validation checks passed"
exit 0
