#!/bin/sh
# Bisect-fixture regression: the committed divergent twin pair under
# tests/fixtures/ must stay reproducible bit-for-bit from the generator,
# and `rtct_replay bisect` must produce byte-identical JSON across runs
# that matches the committed expected report (the rtct.bisect.v1 export is
# a stable interface, not best-effort diagnostics).
#
# Usage: replay_bisect_test.sh <path-to-rtct_replay> <fixture-dir>
set -u

REPLAY="$1"
FIXTURES="$2"
fails=0
tmp="${TMPDIR:-/tmp}/rtct_bisect_test.$$"
mkdir -p "$tmp" || exit 1
trap 'rm -rf "$tmp"' EXIT

check() {
  desc="$1"
  shift
  if "$@"; then
    echo "ok: $desc"
  else
    echo "FAIL: $desc"
    fails=$((fails + 1))
  fi
}

# 1. The generator reproduces the committed fixtures byte-for-byte.
"$REPLAY" gen-fixture "$tmp" >/dev/null || { echo "FAIL: gen-fixture"; exit 1; }
for f in bisect_twin_a.rpl bisect_twin_b.rpl bisect_expected.json; do
  check "regenerated $f is byte-identical to committed" \
    cmp -s "$tmp/$f" "$FIXTURES/$f"
done

# 2. Bisecting the committed pair is deterministic (two runs, identical
#    bytes) and matches the committed expected report exactly. Exit code 2
#    is the documented "diverged" status.
"$REPLAY" bisect "$FIXTURES/bisect_twin_a.rpl" "$FIXTURES/bisect_twin_b.rpl" \
  > "$tmp/run1.json"
code=$?
check "bisect exits with the diverged status (2)" [ "$code" -eq 2 ]
"$REPLAY" bisect "$FIXTURES/bisect_twin_a.rpl" "$FIXTURES/bisect_twin_b.rpl" \
  > "$tmp/run2.json"
check "two bisect runs are byte-identical" cmp -s "$tmp/run1.json" "$tmp/run2.json"
check "bisect output matches the committed expected JSON" \
  cmp -s "$tmp/run1.json" "$FIXTURES/bisect_expected.json"

# 3. A twin bisected against itself reports a clean verdict with exit 0.
"$REPLAY" bisect "$FIXTURES/bisect_twin_a.rpl" "$FIXTURES/bisect_twin_a.rpl" \
  > "$tmp/self.json"
code=$?
check "self-bisect exits clean (0)" [ "$code" -eq 0 ]
check "self-bisect verdict is identical" \
  grep -q '"verdict":"identical"' "$tmp/self.json"

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed"
  exit 1
fi
echo "all bisect fixture checks passed"
