// Differential property test for the AC16 ALU: random straight-line
// instruction streams run on the real CPU and on an independent C++
// reference model written directly from the ISA documentation; the full
// register file and flags must agree. Ten seeds x 200 programs x 40
// instructions ≈ 80k random instruction checks.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/random.h"
#include "src/emu/assembler.h"
#include "src/emu/isa.h"
#include "src/emu/machine.h"

namespace rtct::emu {
namespace {

/// Reference semantics, deliberately written as plainly as possible (and
/// independently from cpu.cpp's switch) so the two can disagree.
struct RefModel {
  std::uint16_t r[kNumRegs] = {};
  bool z = false, n = false, c = false;

  void set_zn(std::uint16_t v) {
    z = v == 0;
    n = (v & 0x8000) != 0;
  }

  void exec(const Instr& ins) {
    auto& rd = r[ins.a & 0xF];
    const std::uint16_t rs = r[ins.b & 0xF];
    const std::uint16_t imm = ins.imm();
    switch (ins.op) {
      case Op::kLdi: rd = imm; break;
      case Op::kMov: rd = rs; set_zn(rd); break;
      case Op::kAdd: {
        const std::uint32_t s = rd + static_cast<std::uint32_t>(rs);
        c = s > 0xFFFF;
        rd = static_cast<std::uint16_t>(s);
        set_zn(rd);
        break;
      }
      case Op::kAddi: {
        const std::uint32_t s = rd + static_cast<std::uint32_t>(imm);
        c = s > 0xFFFF;
        rd = static_cast<std::uint16_t>(s);
        set_zn(rd);
        break;
      }
      case Op::kSub:
        c = rd < rs;
        rd = static_cast<std::uint16_t>(rd - rs);
        set_zn(rd);
        break;
      case Op::kSubi:
        c = rd < imm;
        rd = static_cast<std::uint16_t>(rd - imm);
        set_zn(rd);
        break;
      case Op::kAnd: rd &= rs; set_zn(rd); break;
      case Op::kAndi: rd &= imm; set_zn(rd); break;
      case Op::kOr: rd |= rs; set_zn(rd); break;
      case Op::kOri: rd |= imm; set_zn(rd); break;
      case Op::kXor: rd ^= rs; set_zn(rd); break;
      case Op::kXori: rd ^= imm; set_zn(rd); break;
      case Op::kShl:
      case Op::kShli: {
        const int s = (ins.op == Op::kShl ? rs : imm) & 15;
        if (s > 0) {
          c = ((rd >> (16 - s)) & 1) != 0;
          rd = static_cast<std::uint16_t>(rd << s);
        }
        set_zn(rd);
        break;
      }
      case Op::kShr:
      case Op::kShri: {
        const int s = (ins.op == Op::kShr ? rs : imm) & 15;
        if (s > 0) {
          c = ((rd >> (s - 1)) & 1) != 0;
          rd = static_cast<std::uint16_t>(rd >> s);
        }
        set_zn(rd);
        break;
      }
      case Op::kMul: rd = static_cast<std::uint16_t>(rd * rs); set_zn(rd); break;
      case Op::kMuli: rd = static_cast<std::uint16_t>(rd * imm); set_zn(rd); break;
      case Op::kNeg: rd = static_cast<std::uint16_t>(-rd); set_zn(rd); break;
      case Op::kNot: rd = static_cast<std::uint16_t>(~rd); set_zn(rd); break;
      case Op::kCmp:
        c = rd < rs;
        set_zn(static_cast<std::uint16_t>(rd - rs));
        break;
      case Op::kCmpi:
        c = rd < imm;
        set_zn(static_cast<std::uint16_t>(rd - imm));
        break;
      default: break;
    }
  }
};

const Op kAluOps[] = {Op::kLdi, Op::kMov,  Op::kAdd,  Op::kAddi, Op::kSub, Op::kSubi,
                      Op::kAnd, Op::kAndi, Op::kOr,   Op::kOri,  Op::kXor, Op::kXori,
                      Op::kShl, Op::kShli, Op::kShr,  Op::kShri, Op::kMul, Op::kMuli,
                      Op::kNeg, Op::kNot,  Op::kCmp,  Op::kCmpi};

class CpuDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CpuDifferentialTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u));

TEST_P(CpuDifferentialTest, RandomAluStreamsMatchReferenceModel) {
  Rng rng(GetParam());
  for (int program = 0; program < 200; ++program) {
    // Build a random straight-line program (registers r0..r13: r14/r15
    // stay out of it so nothing aliases the conventions).
    std::vector<Instr> instrs;
    for (int i = 0; i < 40; ++i) {
      Instr ins;
      ins.op = kAluOps[rng.uniform(0, std::size(kAluOps) - 1)];
      ins.a = static_cast<std::uint8_t>(rng.uniform(0, 13));
      ins.b = static_cast<std::uint8_t>(rng.uniform(0, 13));
      if (rng.bernoulli(0.5)) {
        // Re-point immediate-bearing bytes at interesting values.
        const std::uint16_t imm = rng.bernoulli(0.3)
                                      ? static_cast<std::uint16_t>(rng.uniform(0, 16))
                                      : static_cast<std::uint16_t>(rng.next_u64());
        ins.b = static_cast<std::uint8_t>(imm & 0xFF);
        ins.c = static_cast<std::uint8_t>(imm >> 8);
        // For reg-reg forms b is a register index; keep it in range.
        switch (ins.op) {
          case Op::kMov: case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOr:
          case Op::kXor: case Op::kShl: case Op::kShr: case Op::kMul: case Op::kCmp:
            ins.b = static_cast<std::uint8_t>(ins.b % 14);
            ins.c = 0;
            break;
          default:
            break;
        }
      }
      instrs.push_back(ins);
    }

    // Assemble the ROM image: the stream then HALT.
    Rom rom;
    rom.title = "diff";
    for (const auto& ins : instrs) {
      std::uint8_t buf[4];
      encode(ins, buf);
      rom.image.insert(rom.image.end(), buf, buf + 4);
    }
    std::uint8_t halt[4] = {static_cast<std::uint8_t>(Op::kHalt), 0, 0, 0};
    rom.image.insert(rom.image.end(), halt, halt + 4);

    ArcadeMachine machine(rom);
    machine.step_frame(0);
    ASSERT_FALSE(machine.faulted());

    RefModel ref;
    for (const auto& ins : instrs) ref.exec(ins);

    for (int reg = 0; reg < 14; ++reg) {
      ASSERT_EQ(machine.cpu().reg(reg), ref.r[reg])
          << "program " << program << " reg r" << reg;
    }
    ASSERT_EQ(machine.cpu().flag_z(), ref.z) << "program " << program;
    ASSERT_EQ(machine.cpu().flag_n(), ref.n) << "program " << program;
    ASSERT_EQ(machine.cpu().flag_c(), ref.c) << "program " << program;
  }
}

TEST(AssemblerFuzzTest, RandomSourceNeverCrashes) {
  // Random printable garbage, random token soup, random truncations of a
  // valid program: the assembler must always return (ok or errors), never
  // crash or hang.
  Rng rng(2024);
  const char* fragments[] = {"LDI", "r1", "r16", ",", ":", ".org", ".equ", ".byte", "0x",
                             "label", "+", "-", "(", ")", "\"str", "'x'", "JMP", "9999999",
                             ".word", "HALT", ";c", "*", "/", "%%", ".space"};
  for (int trial = 0; trial < 500; ++trial) {
    std::string src;
    const int tokens = static_cast<int>(rng.uniform(1, 60));
    for (int i = 0; i < tokens; ++i) {
      src += fragments[rng.uniform(0, std::size(fragments) - 1)];
      src += rng.bernoulli(0.3) ? "\n" : " ";
    }
    (void)assemble(src, "fuzz");
  }
  for (int trial = 0; trial < 200; ++trial) {
    std::string src;
    const int len = static_cast<int>(rng.uniform(0, 200));
    for (int i = 0; i < len; ++i) {
      src += static_cast<char>(rng.uniform(32, 126));
      if (rng.bernoulli(0.05)) src += '\n';
    }
    (void)assemble(src, "fuzz2");
  }
  SUCCEED();
}

}  // namespace
}  // namespace rtct::emu
