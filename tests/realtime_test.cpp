// Integration tests for the wall-clock driver over real loopback UDP —
// two complete sites in one process, two threads. Kept short (a few
// seconds of 60 FPS play) since these consume real time.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "src/common/telemetry.h"
#include "src/core/input_source.h"
#include "src/core/realtime.h"
#include "src/core/spectate.h"
#include "src/core/wire.h"
#include "src/games/roms.h"
#include "src/net/udp_socket.h"

namespace rtct::core {
namespace {

struct Pair {
  net::UdpSocket s0{"127.0.0.1", 0};
  net::UdpSocket s1{"127.0.0.1", 0};
  Pair() {
    EXPECT_TRUE(s0.valid());
    EXPECT_TRUE(s1.valid());
    EXPECT_TRUE(s0.connect_peer("127.0.0.1", s1.local_port()));
    EXPECT_TRUE(s1.connect_peer("127.0.0.1", s0.local_port()));
  }
};

TEST(RealtimeTest, TwoSitesOverLoopbackStayConsistent) {
  auto m0 = games::make_machine("torture");  // maximal divergence sensitivity
  auto m1 = games::make_machine("torture");
  Pair sockets;
  MasherInput p0(5), p1(6);

  RealtimeConfig cfg;
  cfg.frames = 120;  // two seconds
  RealtimeSession a(0, *m0, p0, sockets.s0, cfg);
  RealtimeSession b(1, *m1, p1, sockets.s1, cfg);

  std::string e0, e1;
  bool ok1 = false;
  std::thread t([&] { ok1 = b.run(&e1); });
  const bool ok0 = a.run(&e0);
  t.join();

  ASSERT_TRUE(ok0) << e0;
  ASSERT_TRUE(ok1) << e1;
  EXPECT_EQ(a.timeline().size(), 120u);
  EXPECT_EQ(b.timeline().size(), 120u);
  EXPECT_EQ(first_divergence(a.timeline(), b.timeline()), -1);
  EXPECT_EQ(m0->state_hash(), m1->state_hash());
  // Wall-clock pacing: roughly 60 FPS (very generous bounds; CI machines
  // have noisy schedulers).
  const double avg_ft = a.timeline().frame_times().summarize().mean;
  EXPECT_GT(avg_ft, 12.0);
  EXPECT_LT(avg_ft, 25.0);
}

// Regression: the master's START answer used to be queued by drain()'s
// session ingest but never polled once the handshake loop had exited, so
// a slave that must wait for the START (rollback, adaptive lag) HELLOed
// forever while the master played against silence — both sides timed
// out. The frame loop's drain() now answers session traffic itself.
TEST(RealtimeTest, RollbackModeNegotiatesOverLoopback) {
  auto m0 = games::make_machine("torture");
  auto m1 = games::make_machine("torture");
  Pair sockets;
  MasherInput p0(7), p1(8);

  RealtimeConfig cfg;
  cfg.frames = 120;
  cfg.sync.rollback = true;
  cfg.sync.rollback_input_delay = 1;
  RealtimeSession a(0, *m0, p0, sockets.s0, cfg);
  RealtimeSession b(1, *m1, p1, sockets.s1, cfg);

  std::string e0, e1;
  bool ok1 = false;
  std::thread t([&] { ok1 = b.run(&e1); });
  const bool ok0 = a.run(&e0);
  t.join();

  ASSERT_TRUE(ok0) << e0;
  ASSERT_TRUE(ok1) << e1;
  EXPECT_TRUE(a.rollback_mode());
  EXPECT_TRUE(b.rollback_mode());
  EXPECT_EQ(a.timeline().size(), 120u);
  EXPECT_EQ(b.timeline().size(), 120u);
  EXPECT_EQ(first_divergence(a.timeline(), b.timeline()), -1);
  EXPECT_EQ(m0->state_hash(), m1->state_hash());
}

TEST(RealtimeTest, MismatchedRomsRefuseToPair) {
  auto m0 = games::make_machine("pong");
  auto m1 = games::make_machine("duel");
  Pair sockets;
  IdleInput idle;

  RealtimeConfig cfg;
  cfg.frames = 30;
  cfg.handshake_timeout = seconds(2);
  RealtimeSession a(0, *m0, idle, sockets.s0, cfg);
  RealtimeSession b(1, *m1, idle, sockets.s1, cfg);

  std::string e0, e1;
  bool ok1 = true;
  std::thread t([&] { ok1 = b.run(&e1); });
  const bool ok0 = a.run(&e0);
  t.join();

  EXPECT_FALSE(ok0);
  EXPECT_NE(e0.find("image"), std::string::npos) << e0;
  EXPECT_FALSE(ok1);  // slave times out or fails symmetric check
}

TEST(RealtimeTest, MissingPeerTimesOut) {
  auto m = games::make_machine("pong");
  net::UdpSocket sock("127.0.0.1", 0);
  ASSERT_TRUE(sock.connect_peer("127.0.0.1", 1));  // nobody listens on port 1
  IdleInput idle;
  RealtimeConfig cfg;
  cfg.handshake_timeout = milliseconds(300);
  RealtimeSession s(0, *m, idle, sock, cfg);
  std::string err;
  EXPECT_FALSE(s.run(&err));
  EXPECT_NE(err.find("timeout"), std::string::npos) << err;
}

TEST(RealtimeTest, PeerDeathStallsThenFails) {
  auto m0 = games::make_machine("pong");
  auto m1 = games::make_machine("pong");
  Pair sockets;
  IdleInput idle0;
  MasherInput p1(9);

  RealtimeConfig short_cfg;
  short_cfg.frames = 20;  // peer plays only 20 frames then leaves
  RealtimeConfig long_cfg;
  long_cfg.frames = 600;
  long_cfg.stall_timeout = milliseconds(700);

  RealtimeSession quitter(1, *m1, p1, sockets.s1, short_cfg);
  RealtimeSession stayer(0, *m0, idle0, sockets.s0, long_cfg);

  std::string e0, e1;
  std::thread t([&] { quitter.run(&e1); });
  const bool ok0 = stayer.run(&e0);
  t.join();

  EXPECT_FALSE(ok0);
  EXPECT_NE(e0.find("stall"), std::string::npos) << e0;
  // The paper's semantics: freeze, never desync — whatever frames both
  // executed are identical.
  EXPECT_EQ(first_divergence(stayer.timeline(), quitter.timeline()), -1);
}

TEST(RealtimeTest, UdpSpectatorReplaysLive) {
  auto m0 = games::make_machine("pong");
  auto m1 = games::make_machine("pong");
  auto replica = games::make_machine("pong");
  Pair sockets;
  MasherInput p0(1), p1(2);

  net::UdpSocket spectator_port("127.0.0.1", 0);
  ASSERT_TRUE(spectator_port.valid());
  net::UdpSocket watcher("127.0.0.1", 0);
  ASSERT_TRUE(watcher.connect_peer("127.0.0.1", spectator_port.local_port()));

  RealtimeConfig cfg;
  cfg.frames = 180;
  RealtimeSession a(0, *m0, p0, sockets.s0, cfg);
  RealtimeSession b(1, *m1, p1, sockets.s1, cfg);
  a.serve_spectators(&spectator_port);

  std::string e0, e1;
  bool ok0 = false, ok1 = false;
  std::thread t0([&] { ok0 = a.run(&e0); });
  std::thread t1([&] { ok1 = b.run(&e1); });

  SpectatorClient client(*replica, SyncConfig{});
  const auto start = std::chrono::steady_clock::now();
  Time fake_now = 0;
  while (client.applied_frame() < cfg.frames - 1 &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(15)) {
    if (auto m = client.make_message(fake_now)) watcher.send(encode_message(*m));
    watcher.wait_readable(milliseconds(10));
    while (auto payload = watcher.try_recv()) {
      if (auto msg = decode_message(*payload)) client.ingest(*msg);
    }
    client.step_available();
    fake_now += milliseconds(10);
  }
  t0.join();
  t1.join();

  ASSERT_TRUE(ok0) << e0;
  ASSERT_TRUE(ok1) << e1;
  EXPECT_TRUE(client.joined());
  EXPECT_EQ(client.applied_frame(), cfg.frames - 1);
  EXPECT_EQ(replica->state_hash(), m0->state_hash());
  EXPECT_EQ(a.spectators_joined(), 1u);
}

TEST(RealtimeTest, SpectatorJoiningDuringHandshakeNeverGetsPreGameSnapshot) {
  // Regression: a JoinRequest read while the host is still at frame 0 (the
  // handshake pumps the spectator socket) used to be answered immediately
  // with a snapshot labeled frame -1 — a state captured before the first
  // Transition, from a frame the host never executed or recorded. The host
  // must defer the snapshot until frame 0 has run; every snapshot frame on
  // the wire must be >= 0 and the late-joiner must still converge.
  auto m0 = games::make_machine("pong");
  auto m1 = games::make_machine("pong");
  auto replica = games::make_machine("pong");
  Pair sockets;
  MasherInput p0(3), p1(4);

  net::UdpSocket spectator_port("127.0.0.1", 0);
  ASSERT_TRUE(spectator_port.valid());
  net::UdpSocket watcher("127.0.0.1", 0);
  ASSERT_TRUE(watcher.connect_peer("127.0.0.1", spectator_port.local_port()));

  RealtimeConfig cfg;
  cfg.frames = 120;
  RealtimeSession a(0, *m0, p0, sockets.s0, cfg);
  RealtimeSession b(1, *m1, p1, sockets.s1, cfg);
  a.serve_spectators(&spectator_port);

  SpectatorClient client(*replica, SyncConfig{});
  // Queue the JoinRequest before either site starts: the host reads it
  // from the socket during its handshake loop, while game_.frame() == 0.
  Time fake_now = 0;
  if (auto m = client.make_message(fake_now)) watcher.send(encode_message(*m));

  std::string e0, e1;
  bool ok0 = false, ok1 = false;
  std::thread t0([&] { ok0 = a.run(&e0); });
  std::thread t1([&] { ok1 = b.run(&e1); });

  std::vector<FrameNo> snapshot_frames;
  const auto start = std::chrono::steady_clock::now();
  while (client.applied_frame() < cfg.frames - 1 &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(15)) {
    if (auto m = client.make_message(fake_now)) watcher.send(encode_message(*m));
    watcher.wait_readable(milliseconds(10));
    while (auto payload = watcher.try_recv()) {
      if (auto msg = decode_message(*payload)) {
        if (const auto* snap = std::get_if<SnapshotMsg>(&*msg)) {
          snapshot_frames.push_back(snap->frame);
        }
        client.ingest(*msg);
      }
    }
    client.step_available();
    fake_now += milliseconds(10);
  }
  t0.join();
  t1.join();

  ASSERT_TRUE(ok0) << e0;
  ASSERT_TRUE(ok1) << e1;
  EXPECT_TRUE(client.joined());
  ASSERT_FALSE(snapshot_frames.empty());
  for (const FrameNo f : snapshot_frames) EXPECT_GE(f, 0) << "pre-game snapshot served";
  EXPECT_EQ(client.applied_frame(), cfg.frames - 1);
  EXPECT_EQ(replica->state_hash(), m0->state_hash());
}

TEST(RealtimeTest, RequestStopInterruptsHandshake) {
  auto m = games::make_machine("pong");
  net::UdpSocket sock("127.0.0.1", 0);
  ASSERT_TRUE(sock.connect_peer("127.0.0.1", 1));
  IdleInput idle;
  RealtimeConfig cfg;
  cfg.handshake_timeout = seconds(30);
  RealtimeSession s(0, *m, idle, sock, cfg);
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    s.request_stop();
  });
  std::string err;
  EXPECT_FALSE(s.run(&err));
  stopper.join();
  EXPECT_NE(err.find("stopped"), std::string::npos);
}

TEST(RealtimeTest, RogueSenderOnSpectatorPortMintsNoObserver) {
  // Regression: the spectator pump used to register ANY address whose first
  // datagram merely decoded as some protocol message — a rogue HELLO (or a
  // relay's EvictNotice re-send, or a reaped observer's stale FeedAck)
  // minted a phantom observer whose never-advancing cursor pinned the
  // hub's trim watermark. Now only a JoinRequest creates observer state;
  // everything else is counted in session.dropped_unknown_sender.
  auto m0 = games::make_machine("pong");
  auto m1 = games::make_machine("pong");
  auto replica = games::make_machine("pong");
  Pair sockets;
  MasherInput p0(5), p1(6);

  net::UdpSocket spectator_port("127.0.0.1", 0);
  ASSERT_TRUE(spectator_port.valid());
  net::UdpSocket watcher("127.0.0.1", 0);
  ASSERT_TRUE(watcher.connect_peer("127.0.0.1", spectator_port.local_port()));
  net::UdpSocket rogue("127.0.0.1", 0);
  ASSERT_TRUE(rogue.connect_peer("127.0.0.1", spectator_port.local_port()));

  RealtimeConfig cfg;
  cfg.frames = 120;
  RealtimeSession a(0, *m0, p0, sockets.s0, cfg);
  RealtimeSession b(1, *m1, p1, sockets.s1, cfg);
  a.serve_spectators(&spectator_port);

  std::string e0, e1;
  bool ok0 = false, ok1 = false;
  std::thread t0([&] { ok0 = a.run(&e0); });
  std::thread t1([&] { ok1 = b.run(&e1); });

  // The rogue pokes the spectator port with decodable non-join messages
  // while a legitimate watcher joins and follows the feed.
  HelloMsg hello;
  hello.site = 1;
  hello.rom_checksum = m0->content_id();
  const auto hello_bytes = encode_message(Message{hello});
  const auto ack_bytes = encode_message(Message{FeedAckMsg{}});

  SpectatorClient client(*replica, SyncConfig{});
  const auto start = std::chrono::steady_clock::now();
  Time fake_now = 0;
  while (client.applied_frame() < cfg.frames - 1 &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(15)) {
    rogue.send(hello_bytes);
    rogue.send(ack_bytes);
    if (auto m = client.make_message(fake_now)) watcher.send(encode_message(*m));
    watcher.wait_readable(milliseconds(10));
    while (auto payload = watcher.try_recv()) {
      if (auto msg = decode_message(*payload)) client.ingest(*msg);
    }
    client.step_available();
    fake_now += milliseconds(10);
  }
  t0.join();
  t1.join();

  ASSERT_TRUE(ok0) << e0;
  ASSERT_TRUE(ok1) << e1;
  EXPECT_EQ(client.applied_frame(), cfg.frames - 1);
  EXPECT_EQ(replica->state_hash(), m0->state_hash());
  // Only the real watcher became an observer; the rogue was counted.
  EXPECT_EQ(a.spectators_joined(), 1u);
  EXPECT_GT(a.dropped_unknown_sender(), 0u);
  MetricsRegistry reg;
  a.export_metrics(reg);
  EXPECT_EQ(reg.value("session.dropped_unknown_sender"),
            static_cast<double>(a.dropped_unknown_sender()));
}

}  // namespace
}  // namespace rtct::core
