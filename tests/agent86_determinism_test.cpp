// The agent86 determinism/differential suite — the same contract the AC16
// machine is held to, proven for the second core:
//   * two replicas fed identical inputs agree digest-for-digest;
//   * save/load round-trip + re-simulation reproduces the straight-line
//     digest sequence exactly (the rollback engine's bedrock);
//   * a single poked byte changes both v1 and v2 digests;
//   * the incremental (dirty-page) v2 digest always equals a from-scratch
//     full rehash (cross-check armed);
//   * save_state_into is allocation-stable on the hot path.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/hash.h"
#include "src/cores/agent86/games.h"
#include "src/cores/agent86/machine.h"
#include "src/emu/machine.h"  // cross-check switch

namespace rtct::a86 {
namespace {

InputWord scripted_input(std::uint32_t& rng) {
  rng = rng * 1664525u + 1013904223u;
  return static_cast<InputWord>(rng >> 16);
}

class Agent86Determinism : public ::testing::TestWithParam<const char*> {};

TEST_P(Agent86Determinism, TwoReplicasAgreePerFrame) {
  auto a = make_machine(GetParam());
  auto b = make_machine(GetParam());
  ASSERT_NE(a, nullptr);
  std::uint32_t rng = 7;
  for (int f = 0; f < 400; ++f) {
    const InputWord in = scripted_input(rng);
    a->step_frame(in);
    b->step_frame(in);
    ASSERT_EQ(a->state_digest(2), b->state_digest(2)) << "frame " << f;
  }
  EXPECT_EQ(a->state_hash(), b->state_hash());
}

TEST_P(Agent86Determinism, SaveLoadResimulateMatchesStraightLine) {
  constexpr int kFrames = 300;
  constexpr int kSnapAt = 137;

  auto m = make_machine(GetParam());
  ASSERT_NE(m, nullptr);
  std::vector<InputWord> inputs;
  std::vector<std::uint64_t> straight_v1, straight_v2;
  std::vector<std::uint8_t> snapshot;
  std::uint32_t rng = 99;
  for (int f = 0; f < kFrames; ++f) {
    inputs.push_back(scripted_input(rng));
    m->step_frame(inputs.back());
    straight_v1.push_back(m->state_hash());
    straight_v2.push_back(m->state_digest(2));
    if (f == kSnapAt) snapshot = m->save_state();
  }

  // Restore mid-run and replay the tail: every digest must reproduce.
  auto r = make_machine(GetParam());
  ASSERT_TRUE(r->load_state(snapshot));
  EXPECT_EQ(r->frame(), kSnapAt + 1);
  EXPECT_EQ(r->state_hash(), straight_v1[kSnapAt]);
  EXPECT_EQ(r->state_digest(2), straight_v2[kSnapAt]);
  for (int f = kSnapAt + 1; f < kFrames; ++f) {
    r->step_frame(inputs[static_cast<std::size_t>(f)]);
    ASSERT_EQ(r->state_hash(), straight_v1[static_cast<std::size_t>(f)]) << "frame " << f;
    ASSERT_EQ(r->state_digest(2), straight_v2[static_cast<std::size_t>(f)]) << "frame " << f;
  }

  // And a fresh reset + full replay reproduces from frame zero.
  r->reset();
  for (int f = 0; f < kFrames; ++f) {
    r->step_frame(inputs[static_cast<std::size_t>(f)]);
    ASSERT_EQ(r->state_digest(2), straight_v2[static_cast<std::size_t>(f)]) << "frame " << f;
  }
}

TEST_P(Agent86Determinism, SingleByteMutationChangesDigests) {
  auto m = make_machine(GetParam());
  std::uint32_t rng = 5;
  for (int f = 0; f < 50; ++f) m->step_frame(scripted_input(rng));
  const auto v1 = m->state_hash();
  const auto v2 = m->state_digest(2);
  m->poke(0x0401, static_cast<std::uint8_t>(m->peek(0x0401) ^ 0x80));
  EXPECT_NE(m->state_hash(), v1);
  EXPECT_NE(m->state_digest(2), v2);
  // page_digests names the touched page (page 4 covers 0x0400..0x04FF).
  auto pages_before = m->page_digests();
  m->poke(0x0401, static_cast<std::uint8_t>(m->peek(0x0401) ^ 0x80));  // revert
  auto pages_after = m->page_digests();
  ASSERT_EQ(pages_before.size(), kNumPages);
  int diffs = 0;
  for (std::size_t i = 0; i < kNumPages; ++i) {
    if (pages_before[i] != pages_after[i]) {
      ++diffs;
      EXPECT_EQ(i, 4u);
    }
  }
  EXPECT_EQ(diffs, 1);
}

TEST_P(Agent86Determinism, IncrementalDigestMatchesFullRehash) {
  emu::set_state_digest_cross_check(true);
  auto m = make_machine(GetParam());
  std::uint32_t rng = 21;
  for (int f = 0; f < 200; ++f) {
    m->step_frame(scripted_input(rng));
    (void)m->state_digest(2);
    if (f == 60) {
      // A snapshot load invalidates every cached page — the classic
      // missed-invalidation hazard the cross-check exists to catch.
      const auto snap = m->save_state();
      ASSERT_TRUE(m->load_state(snap));
    }
  }
  // Independent spot check: page digests equal a hand-computed FNV.
  const auto pages = m->page_digests();
  for (const std::size_t page : {std::size_t{0}, std::size_t{4}, std::size_t{0xB8}}) {
    std::vector<std::uint8_t> raw(kPageSize);
    for (std::size_t i = 0; i < kPageSize; ++i) {
      raw[i] = m->peek(static_cast<std::uint16_t>(page * kPageSize + i));
    }
    EXPECT_EQ(pages[page], fnv1a64(raw)) << "page " << page;
  }
  emu::set_state_digest_cross_check(false);
  EXPECT_EQ(emu::state_digest_cross_check_failures(), 0u);
}

TEST_P(Agent86Determinism, SaveStateIntoIsAllocationStable) {
  auto m = make_machine(GetParam());
  std::vector<std::uint8_t> buf;
  m->save_state_into(buf);
  const auto cap = buf.capacity();
  const auto* data = buf.data();
  std::uint32_t rng = 1;
  for (int f = 0; f < 32; ++f) {
    m->step_frame(scripted_input(rng));
    m->save_state_into(buf);
    EXPECT_EQ(buf.capacity(), cap);
    EXPECT_EQ(buf.data(), data);  // same backing store, no realloc
  }
}

TEST_P(Agent86Determinism, LoadStateRejectsMalformedSnapshots) {
  auto m = make_machine(GetParam());
  std::uint32_t rng = 3;
  for (int f = 0; f < 10; ++f) m->step_frame(scripted_input(rng));
  auto good = m->save_state();

  auto wrong_version = good;
  wrong_version[0] ^= 0xFF;
  EXPECT_FALSE(m->load_state(wrong_version));

  auto wrong_content = good;
  wrong_content[3] ^= 0x01;  // inside the content-id field
  EXPECT_FALSE(m->load_state(wrong_content));

  auto truncated = good;
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(m->load_state(truncated));

  auto oversized = good;
  oversized.push_back(0);
  EXPECT_FALSE(m->load_state(oversized));

  EXPECT_TRUE(m->load_state(good));  // the machine itself is still usable
}

INSTANTIATE_TEST_SUITE_P(AllGames, Agent86Determinism,
                         ::testing::Values("skirmish", "pong", "havoc"),
                         [](const auto& info) { return std::string(info.param); });

}  // namespace
}  // namespace rtct::a86
