// The GameCore registry: qualified-name resolution, the core/game
// catalogue, render access without downcasting, and — the paper's §2
// "same game image" rule made cross-core — the regression that two sites
// loading the *same game name* on *different cores* refuse to pair.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "src/common/random.h"
#include "src/core/bisect.h"
#include "src/core/replay.h"
#include "src/core/session.h"
#include "src/cores/agent86/isa.h"
#include "src/cores/registry.h"
#include "src/emu/game.h"
#include "src/testbed/experiment.h"

namespace rtct::cores {
namespace {

TEST(SplitQualifiedTest, BareNamesResolveToDefaultCore) {
  const auto q = split_qualified("duel");
  EXPECT_EQ(q.core, "ac16");
  EXPECT_EQ(q.game, "duel");
}

TEST(SplitQualifiedTest, QualifiedNamesSplitAtColon) {
  const auto q = split_qualified("agent86:skirmish");
  EXPECT_EQ(q.core, "agent86");
  EXPECT_EQ(q.game, "skirmish");
}

TEST(RegistryTest, BuiltInCoresAreRegistered) {
  auto& reg = CoreRegistry::instance();
  EXPECT_NE(reg.core("ac16"), nullptr);
  EXPECT_NE(reg.core("agent86"), nullptr);
  EXPECT_NE(reg.core("native"), nullptr);
  EXPECT_EQ(reg.core("zx81"), nullptr);
}

TEST(RegistryTest, MakeGameResolvesBareAndQualifiedNames) {
  // Bare name: backwards compatible with every existing CLI flag.
  auto bare = make_game("duel");
  ASSERT_NE(bare, nullptr);
  EXPECT_EQ(bare->content_name(), "ac16:duel");

  auto qualified = make_game("ac16:duel");
  ASSERT_NE(qualified, nullptr);
  EXPECT_EQ(qualified->content_id(), bare->content_id());

  auto a86 = make_game("agent86:skirmish");
  ASSERT_NE(a86, nullptr);
  EXPECT_EQ(a86->content_name(), "agent86:skirmish");

  auto native = make_game("native:cellwars");
  ASSERT_NE(native, nullptr);
  EXPECT_EQ(native->content_name(), "native:cellwars");

  EXPECT_EQ(make_game("ac16:nosuchgame"), nullptr);
  EXPECT_EQ(make_game("nosuchcore:duel"), nullptr);
}

TEST(RegistryTest, CatalogueCoversAllCoresWithDistinctContentIds) {
  const auto entries = list_games();
  std::set<std::string> cores_seen;
  std::set<std::uint64_t> ids;
  for (const auto& e : entries) {
    cores_seen.insert(e.core);
    EXPECT_NE(e.content_id, 0u) << e.qualified();
    EXPECT_TRUE(ids.insert(e.content_id).second)
        << "duplicate content id for " << e.qualified();
    // The catalogue's id matches what a live instance reports.
    auto g = make_game(e.qualified());
    ASSERT_NE(g, nullptr) << e.qualified();
    EXPECT_EQ(g->content_id(), e.content_id) << e.qualified();
    EXPECT_EQ(g->content_name(), e.qualified());
  }
  EXPECT_TRUE(cores_seen.count("ac16"));
  EXPECT_TRUE(cores_seen.count("agent86"));
  EXPECT_TRUE(cores_seen.count("native"));
}

TEST(RegistryTest, ContentIdRoundTripsThroughLookup) {
  for (const auto& e : list_games()) {
    auto name = find_content_name(e.content_id);
    ASSERT_TRUE(name.has_value()) << e.qualified();
    EXPECT_EQ(*name, e.qualified());
    auto g = make_game_for_content(e.content_id);
    ASSERT_NE(g, nullptr) << e.qualified();
    EXPECT_EQ(g->content_id(), e.content_id);
  }
  EXPECT_EQ(find_content_name(0xDEADBEEF), std::nullopt);
  EXPECT_EQ(make_game_for_content(0xDEADBEEF), nullptr);
}

TEST(RegistryTest, EveryCoreRendersWithoutDowncasting) {
  // The testbed/tools contract: render access goes through
  // IDeterministicGame::renderable(), never dynamic_cast.
  for (const char* name : {"ac16:duel", "agent86:pong", "native:cellwars"}) {
    auto g = make_game(name);
    ASSERT_NE(g, nullptr) << name;
    const emu::IRenderableGame* r = g->renderable();
    ASSERT_NE(r, nullptr) << name;
    EXPECT_GT(r->fb_cols(), 0) << name;
    EXPECT_GT(r->fb_rows(), 0) << name;
    EXPECT_EQ(r->framebuffer().size(),
              static_cast<std::size_t>(r->fb_cols() * r->fb_rows()))
        << name;
  }
}

TEST(RegistryTest, SameGameNameOnDifferentCoresHasDifferentContentId) {
  // "pong" exists on both ac16 and agent86 — same name, different images.
  auto ac16 = make_game("ac16:pong");
  auto a86 = make_game("agent86:pong");
  ASSERT_NE(ac16, nullptr);
  ASSERT_NE(a86, nullptr);
  EXPECT_NE(ac16->content_id(), a86->content_id());
}

// Delivers a poll()ed session message from one side into the other.
bool relay(core::SessionControl& from, core::SessionControl& to, Time now) {
  if (auto m = from.poll(now)) {
    to.ingest(*m, now);
    return true;
  }
  return false;
}

TEST(CrossCorePairingTest, SameNameDifferentCoreRefusesHandshake) {
  // §2's "same game image" requirement, cross-core: a site running
  // ac16:pong and a site running agent86:pong must NOT pair, even though
  // both typed "pong".
  auto ac16 = make_game("ac16:pong");
  auto a86 = make_game("agent86:pong");
  ASSERT_NE(ac16, nullptr);
  ASSERT_NE(a86, nullptr);

  core::SessionControl master(0, ac16->content_id(), core::SyncConfig{});
  core::SessionControl slave(1, a86->content_id(), core::SyncConfig{});

  ASSERT_TRUE(relay(slave, master, 0));  // incompatible HELLO arrives
  EXPECT_FALSE(master.running());
  EXPECT_FALSE(master.poll(0).has_value());  // no START goes back
  EXPECT_FALSE(slave.running());

  // Control: the same core on both sides pairs fine.
  core::SessionControl m2(0, a86->content_id(), core::SyncConfig{});
  core::SessionControl s2(1, a86->content_id(), core::SyncConfig{});
  ASSERT_TRUE(relay(s2, m2, 0));
  EXPECT_TRUE(m2.running());
}

// ---------------------------------------------------------------------------
// The transparency proof, end to end: the full distributed stack — lockstep,
// rollback, spectators, RTCTRPL2 replay seek, and page-level divergence
// bisection — over a core that shares no code with the AC16 interpreter.

TEST(Agent86TestbedTest, TwoSiteLockstepSessionConverges) {
  testbed::ExperimentConfig cfg;
  cfg.game = "agent86:skirmish";
  cfg.frames = 600;
  cfg.set_rtt(milliseconds(60));
  cfg.net_a_to_b.loss = 0.03;
  const auto r = testbed::run_experiment(cfg);
  EXPECT_TRUE(r.converged());
  EXPECT_EQ(r.first_divergence(), -1);
  EXPECT_EQ(r.site[0].desync_frame, -1);
  // Both sites rendered the same 64x32 agent86 screen.
  EXPECT_EQ(r.site[0].fb_cols, a86::kFbCols);
  EXPECT_EQ(r.site[0].fb_rows, a86::kFbRows);
  EXPECT_EQ(r.site[0].final_framebuffer, r.site[1].final_framebuffer);
  // The recording carries the qualified name, so offline tooling can
  // re-instantiate the right core without a content-id scan.
  EXPECT_EQ(r.site[0].replay.game_name(), "agent86:skirmish");
}

TEST(Agent86TestbedTest, RollbackSessionConvergesAndReplays) {
  testbed::ExperimentConfig cfg;
  cfg.game = "agent86:pong";
  cfg.frames = 600;
  cfg.set_rtt(milliseconds(80));
  cfg.sync.rollback = true;
  const auto r = testbed::run_experiment(cfg);
  ASSERT_TRUE(r.converged());
  EXPECT_TRUE(r.site[0].rollback_mode);
  // The confirmed-history recording replays onto a fresh replica.
  auto replica = make_game("agent86:pong");
  ASSERT_NE(replica, nullptr);
  EXPECT_TRUE(r.site[0].replay.apply(*replica));
}

TEST(Agent86TestbedTest, SpectatorJoinsAnAgent86Session) {
  testbed::ExperimentConfig cfg;
  cfg.game = "agent86:skirmish";
  cfg.frames = 500;
  cfg.set_rtt(milliseconds(40));
  cfg.observers = 1;
  cfg.observer_join_delay = seconds(2);
  const auto r = testbed::run_experiment(cfg);
  ASSERT_TRUE(r.converged());
  EXPECT_TRUE(r.observers_consistent());  // snapshot + feed on agent86
}

/// Records an agent86 skirmish session with embedded keyframes.
core::Replay record_a86(int frames, int interval, Rng rng) {
  auto m = make_game("agent86:skirmish");
  core::SyncConfig cfg;
  cfg.digest_v2 = true;
  cfg.replay_keyframe_interval = interval;
  core::Replay rec(m->content_id(), cfg, m->content_name());
  for (int f = 0; f < frames; ++f) {
    const auto input = static_cast<InputWord>(rng.next_u64());
    m->step_frame(input);
    rec.record(input);
    if (rec.keyframe_due()) rec.record_keyframe(*m);
  }
  return rec;
}

TEST(Agent86ReplayTest, SeekMatchesLinearReplayThroughTheContainer) {
  const core::Replay rec = record_a86(450, 100, Rng(7));
  // Round-trip through the serialized container (name included).
  const auto parsed = core::Replay::parse(rec.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->game_name(), "agent86:skirmish");
  ASSERT_FALSE(parsed->keyframes().empty());

  // Linear digests for the whole session.
  std::vector<std::uint64_t> linear;
  auto lin = make_game("agent86:skirmish");
  ASSERT_TRUE(parsed->apply(*lin, [&](FrameNo, std::uint64_t d) { linear.push_back(d); }, 2));

  auto m = make_game("agent86:skirmish");
  for (const FrameNo f : {FrameNo{0}, FrameNo{99}, FrameNo{250}, FrameNo{449}, FrameNo{101}}) {
    core::Replay::SeekStats stats;
    const auto d = parsed->seek(*m, f, 2, &stats);
    ASSERT_TRUE(d.has_value()) << "frame " << f;
    EXPECT_EQ(*d, linear[static_cast<std::size_t>(f)]) << "frame " << f;
    EXPECT_LT(stats.resimulated, 101) << "keyframe not used at frame " << f;
  }
}

TEST(Agent86BisectTest, MutatedKeyframeNamesRealPageAddress) {
  // Flip one RAM byte inside an embedded keyframe and restamp its digest:
  // the bisector must name that frame and that 256 B page with its real
  // agent86 address (page_digest_base() == 0 — flat 64 KiB, unlike AC16's
  // kRamBase-offset pages).
  const int kPage = 0x40;  // scratch RAM the games never touch
  const core::Replay a = record_a86(600, 150, Rng(21));
  core::Replay b = a;
  bool mutated = false;
  for (core::ReplayKeyframe& kf : b.keyframes_mutable()) {
    if (kf.frame != 449) continue;
    const std::size_t header = kf.state.size() - a86::kMemSize;
    kf.state[header + kPage * a86::kPageSize + 7] ^= 0x01;
    auto scratch = make_game("agent86:skirmish");
    ASSERT_TRUE(scratch->load_state(kf.state));
    kf.digest = scratch->state_digest(b.digest_version());
    mutated = true;
  }
  ASSERT_TRUE(mutated) << "no keyframe at frame 449";

  const auto factory = [] { return make_game("agent86:skirmish"); };
  const core::BisectReport rep = core::bisect_replays(a, b, factory);
  EXPECT_EQ(rep.verdict, "diverged");
  EXPECT_EQ(rep.first_divergent_frame, 449);
  EXPECT_EQ(rep.first_input_divergence, -1);
  EXPECT_EQ(rep.diverged_side, "b");
  ASSERT_EQ(rep.pages.size(), 1u);
  EXPECT_EQ(rep.pages[0].page, kPage);
  EXPECT_EQ(rep.pages[0].addr, static_cast<std::uint32_t>(kPage * a86::kPageSize));
  EXPECT_NE(rep.pages[0].digest_a, rep.pages[0].digest_b);
}

}  // namespace
}  // namespace rtct::cores
