// RollbackSession unit tests: two sessions wired back to back through a
// hand-driven message queue (no virtual-clock testbed, no sockets), so
// each test controls exactly when datagrams arrive, get duplicated, get
// dropped, or get corrupted. The chaos suites cover the integrated
// behaviour; these pin down the speculation engine's contract in
// isolation:
//
//   * confirmed history is canonical — byte-for-byte equal between the
//     two sites AND equal to a straight-line replica that never rolled
//     back (the tentpole invariant, checked here at unit granularity);
//   * hold-last prediction never rolls back while inputs are constant;
//   * speculation is bounded by the snapshot ring and resumes after
//     confirmation catches up;
//   * go-back-N retransmission survives loss, duplication and reordering;
//   * the hash tripwire flags a forged state hash at the exact frame;
//   * confirmed_state() is a loadable snapshot of the confirmed frontier.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <utility>

#include "src/core/rollback.h"
#include "src/games/cellwars.h"

namespace rtct::core {
namespace {

SyncConfig rollback_cfg(int delay = 2, int window = 16) {
  SyncConfig cfg;
  cfg.rollback = true;
  cfg.rollback_input_delay = delay;
  cfg.rollback_window = window;
  cfg.hash_interval = 10;
  return cfg;
}

/// Two RollbackSessions over an explicit in-order delay queue. Each step()
/// delivers due messages, reconciles, advances one frame per site (inputs
/// from a caller-supplied schedule), and flushes outbound traffic.
struct Rig {
  explicit Rig(SyncConfig cfg = rollback_cfg(), Dur one_way = milliseconds(5))
      : cfg_(cfg),
        one_way_(one_way),
        game_a_(games::make_cellwars()),
        game_b_(games::make_cellwars()),
        a_(0, *game_a_, cfg),
        b_(1, *game_b_, cfg) {}

  void deliver_due() {
    while (!to_a_.empty() && to_a_.front().first <= now_) {
      a_.ingest(to_a_.front().second, now_);
      to_a_.pop_front();
    }
    while (!to_b_.empty() && to_b_.front().first <= now_) {
      b_.ingest(to_b_.front().second, now_);
      to_b_.pop_front();
    }
    a_.reconcile();
    b_.reconcile();
  }

  void flush() {
    if (auto m = a_.make_message(now_)) to_b_.emplace_back(now_ + one_way_, *m);
    if (auto m = b_.make_message(now_)) to_a_.emplace_back(now_ + one_way_, *m);
  }

  /// One frame on both sites. `pa`/`pb` are the per-player button bytes
  /// for this call (the session applies them `delay` frames later).
  void step(std::uint8_t pa, std::uint8_t pb) {
    now_ += milliseconds(16);
    deliver_due();
    ASSERT_TRUE(a_.can_advance());
    ASSERT_TRUE(b_.can_advance());
    a_.advance_frame(make_input(pa, 0));
    b_.advance_frame(make_input(0, pb));
    flush();
  }

  /// Pumps the network (no new frames) until both sides confirmed all
  /// `frames` and acked each other's full input history.
  void drain(FrameNo frames) {
    for (int i = 0; i < 1000; ++i) {
      if (a_.confirmed_frames() >= frames && b_.confirmed_frames() >= frames &&
          a_.fully_acked() && b_.fully_acked()) {
        return;
      }
      now_ += milliseconds(16);
      deliver_due();
      flush();
    }
    FAIL() << "drain did not converge: a confirmed " << a_.confirmed_frames()
           << ", b confirmed " << b_.confirmed_frames();
  }

  /// Asserts both sites agree on the confirmed history AND that it equals
  /// a straight-line replica stepping the same merged inputs with no
  /// speculation at all.
  void expect_canonical_history(FrameNo frames) {
    ASSERT_EQ(a_.confirmed_frames(), frames);
    ASSERT_EQ(b_.confirmed_frames(), frames);
    auto twin = games::make_cellwars();
    for (FrameNo f = 0; f < frames; ++f) {
      ASSERT_EQ(a_.confirmed_input(f), b_.confirmed_input(f)) << "frame " << f;
      ASSERT_EQ(a_.confirmed_digest(f), b_.confirmed_digest(f)) << "frame " << f;
      twin->step_frame(a_.confirmed_input(f));
      ASSERT_EQ(twin->state_digest(cfg_.digest_version()), a_.confirmed_digest(f))
          << "straight-line twin diverged at frame " << f;
    }
    EXPECT_FALSE(a_.desync_detected());
    EXPECT_FALSE(b_.desync_detected());
  }

  SyncConfig cfg_;
  Dur one_way_;
  Time now_ = 0;
  std::unique_ptr<emu::IDeterministicGame> game_a_, game_b_;
  RollbackSession a_, b_;
  std::deque<std::pair<Time, SyncMsg>> to_a_, to_b_;
};

TEST(RollbackSessionTest, ConstantInputsNeverRollBack) {
  // Hold-last prediction of a constant stream is always right: the
  // speculative path must leave zero rollbacks and zero re-simulated
  // frames, while still predicting (with ~2.5 frames of one-way latency
  // the actual input always lands after the frame already executed).
  Rig rig(rollback_cfg(), milliseconds(40));
  constexpr FrameNo kFrames = 60;
  for (FrameNo f = 0; f < kFrames; ++f) rig.step(0, 0);
  rig.drain(kFrames);
  rig.expect_canonical_history(kFrames);
  EXPECT_EQ(rig.a_.rollback_stats().rollbacks, 0u);
  EXPECT_EQ(rig.b_.rollback_stats().rollbacks, 0u);
  EXPECT_EQ(rig.a_.rollback_stats().frames_resimulated, 0u);
  EXPECT_GT(rig.a_.rollback_stats().predicted_frames, 0u)
      << "test is vacuous if nothing was ever predicted";
  EXPECT_EQ(rig.a_.rollback_stats().mispredicted_frames, 0u);
}

TEST(RollbackSessionTest, MispredictionRollsBackToCanonicalHistory) {
  // ~3 frames of one-way latency, with both players changing buttons
  // mid-run: every change lands after the frame already executed with the
  // held-last guess, forcing restore + re-simulate. The confirmed history
  // must come out identical to the never-speculated twin.
  Rig rig(rollback_cfg(), milliseconds(50));
  constexpr FrameNo kFrames = 80;
  for (FrameNo f = 0; f < kFrames; ++f) {
    // Button patterns with edges every few frames (Up/A-style bits).
    const auto pa = static_cast<std::uint8_t>((f / 5) % 3 == 0 ? 0x11 : 0x02);
    const auto pb = static_cast<std::uint8_t>((f / 7) % 2 == 0 ? 0x08 : 0x14);
    rig.step(pa, pb);
  }
  rig.drain(kFrames);
  rig.expect_canonical_history(kFrames);
  EXPECT_GT(rig.a_.rollback_stats().rollbacks, 0u)
      << "input edges under 3-frame latency must have forced a rollback";
  EXPECT_GT(rig.a_.rollback_stats().mispredicted_frames, 0u);
  EXPECT_GT(rig.a_.rollback_stats().frames_resimulated, 0u);
  EXPECT_GT(rig.a_.rollback_stats().max_rollback_depth, 0);
  EXPECT_LE(rig.a_.rollback_stats().max_rollback_depth, rig.cfg_.rollback_window);
}

TEST(RollbackSessionTest, SpeculationStopsAtRingBoundAndResumes) {
  // With the network fully severed, speculation must halt exactly when
  // executing one more frame would evict the oldest snapshot the next
  // rollback could need — and resume once traffic confirms frames.
  Rig rig(rollback_cfg(/*delay=*/2, /*window=*/8));
  // Sever the network: step() flushes into the queues but nothing is
  // delivered until we say so.
  int steps = 0;
  while (rig.a_.can_advance() && steps < 100) {
    rig.now_ += milliseconds(16);
    rig.a_.advance_frame(0);
    rig.b_.advance_frame(0);
    rig.flush();
    ++steps;
  }
  ASSERT_LT(steps, 100) << "speculation never hit the ring bound";
  // Frames [0, delay) carry prefilled actual inputs and self-confirm, so
  // the bound lands at confirmed + window - 1 executed frames.
  EXPECT_EQ(rig.a_.current_frame(),
            rig.a_.confirmed_frames() + rig.cfg_.rollback_window - 1);
  EXPECT_FALSE(rig.b_.can_advance());

  // Reconnect: deliver everything, confirmation catches up, speculation
  // may proceed again.
  rig.now_ += milliseconds(16);
  rig.deliver_due();
  EXPECT_TRUE(rig.a_.can_advance());
  EXPECT_TRUE(rig.b_.can_advance());
  const FrameNo done = rig.a_.current_frame();
  rig.drain(done);
  rig.expect_canonical_history(done);
}

TEST(RollbackSessionTest, SurvivesLossDuplicationAndReordering) {
  // Go-back-N windows make the input stream self-healing: drop every 3rd
  // datagram, deliver the rest twice, and flip delivery order in pairs.
  // Confirmed history must still be canonical on both sides.
  Rig rig(rollback_cfg(), milliseconds(30));
  constexpr FrameNo kFrames = 60;
  std::uint64_t counter = 0;
  for (FrameNo f = 0; f < kFrames; ++f) {
    rig.now_ += milliseconds(16);
    // Mangle the pending queues before delivery: drop / duplicate.
    for (auto* q : {&rig.to_a_, &rig.to_b_}) {
      std::deque<std::pair<Time, SyncMsg>> mangled;
      for (auto& [t, m] : *q) {
        ++counter;
        if (t > rig.now_) {
          mangled.emplace_back(t, std::move(m));  // not due yet — keep
        } else if (counter % 3 == 0) {
          continue;  // dropped
        } else {
          mangled.emplace_back(t, m);
          mangled.emplace_back(t, std::move(m));  // duplicated
        }
      }
      // Reorder adjacent due pairs.
      for (std::size_t i = 1; i < mangled.size(); i += 2) {
        if (mangled[i].first <= rig.now_ && mangled[i - 1].first <= rig.now_) {
          std::swap(mangled[i], mangled[i - 1]);
        }
      }
      *q = std::move(mangled);
    }
    rig.deliver_due();
    ASSERT_TRUE(rig.a_.can_advance());
    ASSERT_TRUE(rig.b_.can_advance());
    const auto pa = static_cast<std::uint8_t>((f / 4) % 2 == 0 ? 0x11 : 0x00);
    const auto pb = static_cast<std::uint8_t>((f / 6) % 2 == 0 ? 0x00 : 0x12);
    rig.a_.advance_frame(make_input(pa, 0));
    rig.b_.advance_frame(make_input(0, pb));
    rig.flush();
  }
  rig.drain(kFrames);
  rig.expect_canonical_history(kFrames);
  // The mangling must actually have exercised the dup path (telemetry
  // invariant: duplicates are counted as duplicates, not stale drops).
  EXPECT_GT(rig.a_.stats().duplicate_inputs_rcvd, 0u);
  EXPECT_EQ(rig.a_.stats().stale_messages, 0u);
}

TEST(RollbackSessionTest, ForgedStateHashTripsDesyncAtThatFrame) {
  // Corrupt the first hash-carrying message from B in flight. A must not
  // crash or diverge silently: the tripwire flags the exact interval
  // frame once A's own confirmed history reaches it.
  Rig rig;
  constexpr FrameNo kFrames = 40;
  bool forged = false;
  FrameNo forged_frame = -1;
  for (FrameNo f = 0; f < kFrames; ++f) {
    rig.step(0x11, 0x11);
    if (!forged) {
      for (auto& [t, m] : rig.to_a_) {
        if (m.hash_frame >= 0) {
          m.state_hash ^= 0xBADC0DEull;
          forged = true;
          forged_frame = m.hash_frame;
          break;
        }
      }
    }
  }
  ASSERT_TRUE(forged) << "hash_interval=10 over 40 frames must attach a hash";
  // Pump without asserting cleanliness (drain() is fine — desync does not
  // stop the transport, only flags it).
  rig.drain(kFrames);
  EXPECT_TRUE(rig.a_.desync_detected());
  EXPECT_EQ(rig.a_.desync_frame(), forged_frame);
  EXPECT_FALSE(rig.b_.desync_detected()) << "B's own history is untouched";
}

TEST(RollbackSessionTest, ConfirmedStateIsALoadableSnapshotOfTheFrontier) {
  // confirmed_state() is what late-joining spectators are seeded from; it
  // must be exactly the machine state after the newest confirmed frame,
  // not a speculative one. Load it into a fresh game and compare digests.
  Rig rig(rollback_cfg(), milliseconds(50));
  for (FrameNo f = 0; f < 50; ++f) {
    const auto pa = static_cast<std::uint8_t>((f / 3) % 2 == 0 ? 0x11 : 0x04);
    rig.step(pa, 0x12);
  }
  const FrameNo confirmed = rig.a_.confirmed_frames();
  ASSERT_GT(confirmed, 0);
  ASSERT_LT(confirmed, rig.a_.current_frame())
      << "latency must leave a speculative tail for this test to bite";
  auto probe = games::make_cellwars();
  ASSERT_TRUE(probe->load_state(rig.a_.confirmed_state()));
  EXPECT_EQ(probe->frame(), confirmed);
  EXPECT_EQ(probe->state_digest(rig.cfg_.digest_version()),
            rig.a_.confirmed_digest(confirmed - 1));
  // And it is *not* the speculative head state.
  EXPECT_NE(probe->frame(), rig.a_.current_frame());
}

TEST(RollbackSessionTest, WindowClampGuaranteesRoomOverInputDelay) {
  // A window smaller than delay + 4 would deadlock (the frame at the
  // confirmed watermark could be evicted before confirmation); the ctor
  // must clamp. Observable via the ring-bound arithmetic.
  SyncConfig cfg = rollback_cfg(/*delay=*/6, /*window=*/2);
  auto game = games::make_cellwars();
  RollbackSession s(0, *game, cfg);
  EXPECT_EQ(s.input_delay(), 6);
  // Sever the network entirely; advance to the bound.
  int steps = 0;
  while (s.can_advance() && steps < 200) {
    s.advance_frame(0);
    ++steps;
  }
  ASSERT_LT(steps, 200);
  // Clamped window is delay + 4 = 10: executed - confirmed == window - 1.
  EXPECT_EQ(s.current_frame() - s.confirmed_frames(), 10 - 1);
}

}  // namespace
}  // namespace rtct::core
