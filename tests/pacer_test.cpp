// Unit tests for FramePacer — the paper's Algorithms 3 & 4 — and for
// FlushClock, the drift-free send-flush scheduler.
#include <gtest/gtest.h>

#include "src/core/flush_clock.h"
#include "src/core/pacer.h"

namespace rtct::core {
namespace {

SyncConfig cfg60() {
  SyncConfig cfg;
  cfg.rate_sync_gain = 1.0;     // run the literal pseudocode in unit tests
  cfg.rate_sync_deadband = 0;
  return cfg;
}

SyncPeer::RemoteObs no_obs() { return {}; }

// ---- Algorithm 3 (EndFrameTiming) --------------------------------------------

TEST(PacerAlg3Test, OnTimeFrameWaitsOutRemainder) {
  FramePacer p(0, cfg60());
  p.begin_frame(0, 0, no_obs());
  const Dur wait = p.end_frame(milliseconds(4));  // frame took 4 ms
  EXPECT_EQ(wait, cfg60().frame_period() - milliseconds(4));
  EXPECT_EQ(p.adjust_time_delta(), 0);  // line 6
}

TEST(PacerAlg3Test, OverrunCarriesNegativeDelta) {
  FramePacer p(0, cfg60());
  p.begin_frame(0, 0, no_obs());
  const Dur wait = p.end_frame(milliseconds(30));  // frame took 30 > 16.7 ms
  EXPECT_EQ(wait, 0);
  EXPECT_EQ(p.adjust_time_delta(), cfg60().frame_period() - milliseconds(30));  // negative
}

TEST(PacerAlg3Test, SubsequentFramesRepayTheDebt) {
  FramePacer p(0, cfg60());
  const Dur tpf = cfg60().frame_period();

  // Frame 0 stalls 30 ms.
  p.begin_frame(0, 0, no_obs());
  EXPECT_EQ(p.end_frame(milliseconds(30)), 0);
  const Dur debt = tpf - milliseconds(30);  // about -13.3 ms

  // Frame 1 computes in 2 ms: its wait is shortened by the debt.
  p.begin_frame(milliseconds(30), 1, no_obs());
  const Dur wait1 = p.end_frame(milliseconds(32));
  EXPECT_EQ(wait1, tpf + debt - milliseconds(2));
  EXPECT_EQ(p.adjust_time_delta(), 0);  // fully repaid

  // Frame 2 is back on the nominal schedule.
  const Time f2 = milliseconds(32) + wait1;
  p.begin_frame(f2, 2, no_obs());
  EXPECT_EQ(p.end_frame(f2 + milliseconds(2)), tpf - milliseconds(2));
}

TEST(PacerAlg3Test, HugeOverrunAccumulatesAcrossFrames) {
  FramePacer p(0, cfg60());
  const Dur tpf = cfg60().frame_period();
  p.begin_frame(0, 0, no_obs());
  EXPECT_EQ(p.end_frame(milliseconds(100)), 0);
  // Debt bigger than one frame: the next on-time frame still returns 0.
  p.begin_frame(milliseconds(100), 1, no_obs());
  EXPECT_EQ(p.end_frame(milliseconds(101)), 0);
  EXPECT_LT(p.adjust_time_delta(), 0);
  EXPECT_EQ(p.adjust_time_delta(), (tpf - milliseconds(100)) + tpf - milliseconds(1));
}

TEST(PacerNaiveTest, NaivePolicyNeverCompensates) {
  FramePacer p(0, cfg60(), PacingPolicy::kNaive);
  p.begin_frame(0, 0, no_obs());
  EXPECT_EQ(p.end_frame(milliseconds(30)), 0);
  EXPECT_EQ(p.adjust_time_delta(), 0);  // §3.2 strawman: no carry-over
  p.begin_frame(milliseconds(30), 1, no_obs());
  EXPECT_EQ(p.end_frame(milliseconds(31)), cfg60().frame_period() - milliseconds(1));
}

// ---- Algorithm 4 (BeginFrameTiming) --------------------------------------------

SyncPeer::RemoteObs obs(FrameNo last_rcv, Time rcv_time, Dur rtt) {
  SyncPeer::RemoteObs o;
  o.valid = true;
  o.last_rcv_frame = last_rcv;
  o.rcv_time = rcv_time;
  o.rtt = rtt;
  o.rtt_valid = true;
  return o;
}

TEST(PacerAlg4Test, MasterNeverRateSyncs) {
  FramePacer p(kMasterSite, cfg60());
  p.begin_frame(milliseconds(500), 30, obs(100, milliseconds(490), milliseconds(40)));
  EXPECT_EQ(p.last_sync_adjust(), 0);  // "In the master site ... always zero"
  EXPECT_EQ(p.adjust_time_delta(), 0);
}

TEST(PacerAlg4Test, SlaveWithoutObservationDoesNothing) {
  FramePacer p(kSlaveSite, cfg60());
  p.begin_frame(milliseconds(500), 30, no_obs());
  EXPECT_EQ(p.last_sync_adjust(), 0);
}

TEST(PacerAlg4Test, InSyncSlaveComputesZeroAdjust) {
  // Construct an observation in which the extrapolated master frame equals
  // the slave's current frame exactly.
  const SyncConfig cfg = cfg60();
  const Dur tpf = cfg.frame_period();
  FramePacer p(kSlaveSite, cfg);
  // Master sent input for master-frame 24 (LastRcv 30 - BufFrame 6);
  // received at t=500ms with RTT 0. At now = 500ms + 6*tpf the master
  // should be at frame 30 — same as the slave: perfectly in sync.
  const Time now = milliseconds(500) + 6 * tpf;
  p.begin_frame(now, 30, obs(30, milliseconds(500), 0));
  EXPECT_EQ(p.last_sync_adjust(), 0);
  EXPECT_EQ(p.adjust_time_delta(), 0);
}

TEST(PacerAlg4Test, SlaveAheadSlowsDown) {
  const SyncConfig cfg = cfg60();
  const Dur tpf = cfg.frame_period();
  FramePacer p(kSlaveSite, cfg);
  const Time now = milliseconds(500) + 6 * tpf;
  // Slave is 3 frames ahead of the extrapolated master frame (30).
  p.begin_frame(now, 33, obs(30, milliseconds(500), 0));
  EXPECT_EQ(p.last_sync_adjust(), 3 * tpf);  // positive => wait longer
  EXPECT_EQ(p.adjust_time_delta(), 3 * tpf);
}

TEST(PacerAlg4Test, SlaveBehindSpeedsUp) {
  const SyncConfig cfg = cfg60();
  const Dur tpf = cfg.frame_period();
  FramePacer p(kSlaveSite, cfg);
  const Time now = milliseconds(500) + 6 * tpf;
  p.begin_frame(now, 27, obs(30, milliseconds(500), 0));
  EXPECT_EQ(p.last_sync_adjust(), -3 * tpf);  // negative => shorten frames
}

TEST(PacerAlg4Test, RttHalfShiftsTheMasterEstimate) {
  const SyncConfig cfg = cfg60();
  const Dur tpf = cfg.frame_period();
  FramePacer p(kSlaveSite, cfg);
  const Time now = milliseconds(500) + 6 * tpf;
  // Same as the in-sync case but the observation travelled 40 ms RTT: the
  // master sent 20 ms before rcv_time, so it is 20 ms further along.
  p.begin_frame(now, 30, obs(30, milliseconds(500), milliseconds(40)));
  EXPECT_EQ(p.last_sync_adjust(), -milliseconds(20));
}

TEST(PacerAlg4Test, GainScalesTheCorrection) {
  SyncConfig cfg = cfg60();
  cfg.rate_sync_gain = 0.25;
  const Dur tpf = cfg.frame_period();
  FramePacer p(kSlaveSite, cfg);
  const Time now = milliseconds(500) + 6 * tpf;
  p.begin_frame(now, 34, obs(30, milliseconds(500), 0));
  EXPECT_EQ(p.last_sync_adjust(), 4 * tpf / 4);
}

TEST(PacerAlg4Test, DeadbandSwallowsNoise) {
  SyncConfig cfg = cfg60();
  cfg.rate_sync_deadband = milliseconds(10);
  const Dur tpf = cfg.frame_period();
  FramePacer p(kSlaveSite, cfg);
  const Time now = milliseconds(500) + 6 * tpf;
  // Raw skew of +5 ms: inside the deadband, ignored.
  p.begin_frame(now - milliseconds(5), 30, obs(30, milliseconds(500), 0));
  EXPECT_EQ(p.last_sync_adjust(), 0);
  // Raw skew of +30 ms: outside, applied.
  p.begin_frame(now - milliseconds(30), 30, obs(30, milliseconds(500), 0));
  EXPECT_EQ(p.last_sync_adjust(), milliseconds(30));
}

TEST(PacerAlg4Test, NoRateSyncBeforeFirstRttSample) {
  // Regression: Algorithm 4 extrapolates the master's position with RTT/2,
  // but at startup obs.rtt used to read 0 from the estimator before any
  // sample existed — the slave then treated a stale observation as fresh
  // and over-corrected. With rtt_valid=false the correction must be
  // skipped entirely, even though the observation itself is valid.
  const SyncConfig cfg = cfg60();
  const Dur tpf = cfg.frame_period();
  FramePacer p(kSlaveSite, cfg);
  const Time now = milliseconds(500) + 6 * tpf;
  SyncPeer::RemoteObs o = obs(30, milliseconds(500), 0);
  o.rtt_valid = false;
  p.begin_frame(now, 33, o);  // 3 frames of apparent skew...
  EXPECT_EQ(p.last_sync_adjust(), 0);  // ...ignored until RTT is known
  EXPECT_EQ(p.adjust_time_delta(), 0);

  // The same observation with a measured RTT applies normally.
  p.begin_frame(now, 33, obs(30, milliseconds(500), 0));
  EXPECT_EQ(p.last_sync_adjust(), 3 * tpf);
}

TEST(PacerAlg4Test, ConvergenceFromStartupSkew) {
  // Closed-loop sanity: a slave that starts 100 ms behind and applies the
  // paper's correction each frame converges to the master's schedule.
  SyncConfig cfg;  // default smoothing (gain 0.15, deadband 4 ms)
  const Dur tpf = cfg.frame_period();
  FramePacer p(kSlaveSite, cfg);

  Time slave_now = milliseconds(100);  // master started at 0
  FrameNo frame = 0;
  for (; frame < 240; ++frame) {
    // Perfect observation: master is exactly on schedule, frame = now/tpf.
    // Master's input for its frame F was "received" with zero RTT; use the
    // freshest plausible observation.
    const FrameNo master_frame_now = static_cast<FrameNo>(slave_now / tpf);
    const auto o = obs(master_frame_now + cfg.buf_frames, slave_now, 0);
    p.begin_frame(slave_now, frame, o);
    const Dur wait = p.end_frame(slave_now + milliseconds(2));
    slave_now += milliseconds(2) + wait;
  }
  // After convergence the slave's frame index matches wall time.
  const auto expected_frame = static_cast<FrameNo>(slave_now / tpf);
  EXPECT_NEAR(static_cast<double>(frame), static_cast<double>(expected_frame), 1.5);
}

// ---- FlushClock ----------------------------------------------------------------

TEST(FlushClockTest, FlushCountMatchesElapsedOverPeriod) {
  // Regression: the old scheduler re-anchored `next = now + period` on every
  // fire, so each tick drifted late by however long the poll loop overslept
  // and the effective flush rate fell below 1/period. The clock must average
  // one fire per period even when due() is polled at sloppy times.
  const Dur period = milliseconds(10);
  FlushClock clock(period);
  // Poll every 7 ms — never aligned with the period — over one second.
  std::uint64_t fires = 0;
  for (Time t = 0; t <= seconds(1); t += milliseconds(7)) {
    if (clock.due(t)) ++fires;
  }
  // 1 s / 10 ms = 100 flushes (+1 for the immediate first fire). The old
  // `now + period` anchoring yields ~72 here (one per 14 ms: every other
  // 7 ms poll), starving the go-back-N resend path.
  EXPECT_GE(fires, 99u);
  EXPECT_LE(fires, 101u);
  EXPECT_EQ(clock.reanchors(), 0u);
}

TEST(FlushClockTest, StallReanchorsInsteadOfBursting) {
  const Dur period = milliseconds(10);
  FlushClock clock(period);
  EXPECT_TRUE(clock.due(0));  // first call fires and anchors
  EXPECT_TRUE(clock.due(milliseconds(10)));
  // A 500 ms stall (e.g. the handshake blocking, or the OS descheduling
  // us): on resume we want ONE catch-up fire and a fresh anchor, not a
  // burst of 50 back-to-back flushes.
  EXPECT_TRUE(clock.due(milliseconds(510)));
  EXPECT_EQ(clock.reanchors(), 1u);
  EXPECT_FALSE(clock.due(milliseconds(511)));
  EXPECT_FALSE(clock.due(milliseconds(519)));
  EXPECT_TRUE(clock.due(milliseconds(520)));
  EXPECT_EQ(clock.fires(), 4u);
}

TEST(FlushClockTest, SmallOversleepCatchesUpWithoutReanchor) {
  const Dur period = milliseconds(10);
  FlushClock clock(period);
  EXPECT_TRUE(clock.due(0));
  // Fire 3 ms late: the next deadline stays on the original grid (t=20),
  // so the late fire is absorbed instead of compounding.
  EXPECT_TRUE(clock.due(milliseconds(13)));
  EXPECT_FALSE(clock.due(milliseconds(19)));
  EXPECT_TRUE(clock.due(milliseconds(20)));
  EXPECT_EQ(clock.reanchors(), 0u);
  EXPECT_EQ(clock.next(), milliseconds(30));
}

}  // namespace
}  // namespace rtct::core
