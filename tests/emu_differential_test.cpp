// Differential equivalence: the fast AC16 interpreter (predecoded ROM,
// devirtualized memory, threaded dispatch) against the reference
// byte-fetch interpreter.
//
// The fast path is only admissible because it is bit-identical to the
// reference in *observable* state. Every test here drives two machines —
// one per backend — through the same inputs in lockstep and requires
// per-frame agreement on the v2 state digest, the fault code, and the
// cycle count, plus byte-identical save_state at the end. Coverage:
//
//   * every bundled game ROM (the benign subset of the ISA)
//   * structure-aware fuzzed ROMs (the hostile subset: wild jumps, ROM
//     stores, runaway loops, invalid opcodes — see fuzz_rom.h)
//   * hand-written regressions for the boundary semantics a fast path is
//     most tempted to get wrong: exact cycle-budget landing, partial
//     frames cut by the budget, fetch wraparound at 0xFFFD, execution
//     crossing the predecode limit into RAM, and self-modifying code
//     running from RAM (including a store into the instruction stream
//     currently being executed).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/emu/assembler.h"
#include "src/emu/cpu.h"
#include "src/emu/fuzz_rom.h"
#include "src/emu/isa.h"
#include "src/emu/machine.h"
#include "src/games/roms.h"

namespace rtct::emu {
namespace {

MachineConfig fast_cfg(int cycles = 100000) { return {cycles, false}; }
MachineConfig ref_cfg(int cycles = 100000) { return {cycles, true}; }

/// Runs `frames` frames on both backends with an identical seeded input
/// stream and asserts lockstep equality of digest, fault and cycle count
/// every frame, full v1 hash periodically, and save_state bytes at the end.
void expect_equivalent(const Rom& rom, int frames, int cycles_per_frame,
                       std::uint64_t input_seed, const std::string& what) {
  ArcadeMachine fast(rom, fast_cfg(cycles_per_frame));
  ArcadeMachine ref(rom, ref_cfg(cycles_per_frame));
  Rng rng(input_seed);
  for (int f = 0; f < frames; ++f) {
    const auto input = static_cast<InputWord>(rng.next_u64());
    fast.step_frame(input);
    ref.step_frame(input);
    ASSERT_EQ(fast.state_digest(2), ref.state_digest(2))
        << what << ": v2 digest diverged at frame " << f;
    ASSERT_EQ(fast.fault(), ref.fault())
        << what << ": fault diverged at frame " << f;
    ASSERT_EQ(fast.last_frame_cycles(), ref.last_frame_cycles())
        << what << ": cycle count diverged at frame " << f;
    if (f % 16 == 0) {
      ASSERT_EQ(fast.state_hash(), ref.state_hash())
          << what << ": full v1 hash diverged at frame " << f;
    }
  }
  EXPECT_EQ(fast.state_hash(), ref.state_hash()) << what;
  EXPECT_EQ(fast.save_state(), ref.save_state()) << what;
}

Rom must_assemble(const char* source, const char* title) {
  auto result = assemble(source, title);
  EXPECT_TRUE(result.ok()) << result.error_text();
  return std::move(result.rom);
}

// ---------------------------------------------------------------------------
// Bundled games

class GameDifferential : public ::testing::TestWithParam<std::string_view> {};

TEST_P(GameDifferential, FastAndReferenceAgreeFrameByFrame) {
  const Rom* rom = games::rom_by_name(GetParam());
  ASSERT_NE(rom, nullptr);
  expect_equivalent(*rom, 240, 100000, 0xD1FF0000 + rom->checksum(),
                    std::string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllGames, GameDifferential,
                         ::testing::ValuesIn(games::game_names()),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

// ---------------------------------------------------------------------------
// Fuzzed ROMs

TEST(FuzzDifferential, StructureAwareRandomRomsAgree) {
  // A small per-frame budget keeps runaway seeds cheap (they budget-fault
  // on frame 1 and stay stopped) while still letting tame seeds produce
  // many frames of real execution.
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const Rom rom = make_fuzz_rom(seed);
    expect_equivalent(rom, 90, 20000, seed ^ 0xF00D, rom.title);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Cycle-budget boundary
//
// Frame 1 of this ROM costs exactly 4 cycles (3x LDI + HALT, 1 cycle each).

constexpr const char* kFourCycleFrame = R"(
.entry main
main:
    LDI r0, 1
    LDI r1, 2
    LDI r2, 3
    HALT
    JMP main
)";

TEST(CycleBudgetDifferential, LandingExactlyOnBudgetDoesNotFault) {
  const Rom rom = must_assemble(kFourCycleFrame, "budget-exact");
  // The budget check is strictly `used > budget`: spending the whole
  // budget to the last cycle is legal.
  for (const bool reference : {false, true}) {
    ArcadeMachine m(rom, {4, reference});
    m.step_frame(0);
    EXPECT_EQ(m.fault(), Fault::kNone) << "reference=" << reference;
    EXPECT_EQ(m.last_frame_cycles(), 4) << "reference=" << reference;
  }
}

TEST(CycleBudgetDifferential, OneCycleShortFaultsIdentically) {
  const Rom rom = must_assemble(kFourCycleFrame, "budget-short");
  ArcadeMachine fast(rom, {3, false});
  ArcadeMachine ref(rom, {3, true});
  fast.step_frame(0);
  ref.step_frame(0);
  EXPECT_EQ(fast.fault(), Fault::kBudgetExceeded);
  EXPECT_EQ(ref.fault(), Fault::kBudgetExceeded);
  // The HALT *executed* (exec-then-check); the budget fault lands after.
  EXPECT_EQ(fast.save_state(), ref.save_state());
  EXPECT_EQ(fast.state_hash(), ref.state_hash());
}

TEST(CycleBudgetDifferential, PartialFrameStateIsIdenticalOnBothBackends) {
  const Rom rom = must_assemble(kFourCycleFrame, "budget-partial");
  ArcadeMachine fast(rom, {2, false});
  ArcadeMachine ref(rom, {2, true});
  fast.step_frame(0);
  ref.step_frame(0);
  for (ArcadeMachine* m : {&fast, &ref}) {
    EXPECT_EQ(m->fault(), Fault::kBudgetExceeded);
    // Instructions execute before the budget check, so the third LDI's
    // write is visible in the faulted state.
    EXPECT_EQ(m->cpu().reg(2), 3);
    EXPECT_EQ(m->last_frame_cycles(), 3);
  }
  EXPECT_EQ(fast.save_state(), ref.save_state());
  EXPECT_EQ(fast.state_hash(), ref.state_hash());
}

// ---------------------------------------------------------------------------
// Fetch wraparound at the top of the address space
//
// The program stores an LDI opcode at 0xFFFD–0xFFFF and jumps there; the
// fourth instruction byte wraps around to mem[0x0000], which the ROM pins
// to 0x12. Executing it yields r1 = 0x1234 and pc wraps to 0x0001, where
// the ROM plants a HALT.

Rom wraparound_rom() {
  std::vector<std::uint8_t> image;
  auto emit = [&image](std::uint8_t b0, std::uint8_t b1, std::uint8_t b2,
                       std::uint8_t b3) {
    image.insert(image.end(), {b0, b1, b2, b3});
  };
  const auto ldi = static_cast<std::uint8_t>(Op::kLdi);
  const auto stb = static_cast<std::uint8_t>(Op::kStb);
  const auto jmp = static_cast<std::uint8_t>(Op::kJmp);
  const auto halt = static_cast<std::uint8_t>(Op::kHalt);
  image.push_back(0x12);          // mem[0x0000]: wrapped imm-high byte
  image.push_back(halt);          // mem[0x0001]: HALT (pc lands here post-wrap)
  image.insert(image.end(), {0, 0, 0});
  image.push_back(jmp);           // mem[0x0005]: JMP 0x0001 (steady state)
  image.insert(image.end(), {0, 0x01, 0x00});
  image.insert(image.end(), {0, 0, 0});  // pad to 0x000C
  EXPECT_EQ(image.size(), 12u);
  emit(ldi, 0, 0xFD, 0xFF);       // 0x000C: LDI r0, 0xFFFD
  emit(ldi, 2, ldi, 0x00);        //         LDI r2, <LDI opcode>
  emit(stb, 0, 2, 0);             //         mem[0xFFFD] = LDI
  emit(ldi, 2, 0x01, 0x00);       //         LDI r2, 1   (target register)
  emit(stb, 0, 2, 1);             //         mem[0xFFFE] = r1
  emit(ldi, 2, 0x34, 0x00);       //         LDI r2, 0x34 (imm-low byte)
  emit(stb, 0, 2, 2);             //         mem[0xFFFF] = 0x34
  emit(jmp, 0, 0xFD, 0xFF);       //         JMP 0xFFFD
  Rom rom;
  rom.title = "wraparound";
  rom.image = std::move(image);
  rom.entry = 0x000C;
  return rom;
}

TEST(FetchWraparoundDifferential, InstructionAt0xFFFDWrapsToRomByteZero) {
  const Rom rom = wraparound_rom();
  for (const bool reference : {false, true}) {
    ArcadeMachine m(rom, {100000, reference});
    m.step_frame(0);
    EXPECT_EQ(m.fault(), Fault::kNone) << "reference=" << reference;
    EXPECT_EQ(m.cpu().reg(1), 0x1234) << "reference=" << reference;
    EXPECT_EQ(m.cpu().pc(), 0x0005) << "reference=" << reference;
  }
  expect_equivalent(rom, 8, 100000, 0xABCD, "wraparound");
}

// ---------------------------------------------------------------------------
// Predecode boundary: the cache covers pc < 0x7FFD (a 4-byte fetch window
// entirely inside ROM). An instruction *starting* at 0x7FFD reads its
// final byte from RAM at 0x8000, which the program controls — the fast
// path must take the byte-fetch fallback there.

TEST(PredecodeBoundaryDifferential, FetchWindowCrossingIntoRamSeesRamBytes) {
  const auto ldi = static_cast<std::uint8_t>(Op::kLdi);
  std::vector<std::uint8_t> image(0x8000, 0);
  // 0x7FFD: LDI r7, 0x??34 — the imm-high byte lives at 0x8000 (RAM).
  image[0x7FFD] = ldi;
  image[0x7FFE] = 7;
  image[0x7FFF] = 0x34;
  // Entry code: poke 0x8000 = 0x77 (imm-high) and 0x8001 = HALT opcode,
  // then jump to the boundary instruction.
  const char* prologue = R"(
.entry main
main:
    LDI r0, 0x8000
    LDI r1, 0x77
    STB r0, r1
    LDI r1, 0x01      ; HALT opcode
    STB r0, r1, 1
    JMP 0x7FFD
)";
  const Rom pro = must_assemble(prologue, "boundary-prologue");
  ASSERT_LE(pro.image.size(), 0x7FDu);
  std::copy(pro.image.begin(), pro.image.end(), image.begin());
  Rom rom;
  rom.title = "predecode-boundary";
  rom.image = std::move(image);
  rom.entry = pro.entry;

  for (const bool reference : {false, true}) {
    ArcadeMachine m(rom, {100000, reference});
    m.step_frame(0);
    EXPECT_EQ(m.fault(), Fault::kNone) << "reference=" << reference;
    // The boundary instruction assembled to LDI r7, 0x7734 and pc moved
    // into RAM (0x8001) where the planted HALT ended the frame.
    EXPECT_EQ(m.cpu().reg(7), 0x7734) << "reference=" << reference;
    EXPECT_EQ(m.cpu().pc(), 0x8005) << "reference=" << reference;
  }
  // Frame 2 resumes at 0x8005 inside zero-filled RAM: a NOP sled that
  // wraps and eventually exceeds the budget. Whatever the exact outcome,
  // both backends must agree on it.
  expect_equivalent(rom, 3, 100000, 0x5EED, "predecode-boundary");
}

// ---------------------------------------------------------------------------
// Execute-from-RAM with self-modifying code
//
// The ROM copies a 24-byte program into RAM at 0x9000 and jumps there.
// The RAM program stores 0xCC into 0x900E — the imm-low byte of the *next*
// instruction in its own stream — so the subsequently executed LDI loads
// 0xCC, not the 0xBB the ROM shipped. Byte-accurate fetch from mutable
// memory is exactly what the predecode cache must NOT shortcut.

constexpr const char* kSelfModifySource = R"(
.entry main
blob:                       ; copied to 0x9000, then executed there
    LDI r3, 0xAAAA          ; 0x9000
    LDI r5, 0xCC            ; 0x9004
    STB r6, r5              ; 0x9008: mem[0x900E] = 0xCC (next instr's imm)
    LDI r4, 0xBB            ; 0x900C: imm byte at 0x900E mutates to 0xCC
    HALT                    ; 0x9010
    JMP 0x9000              ; 0x9014 (steady state: loop the RAM program)
main:
    LDI r0, blob
    LDI r1, 0x9000
    LDI r2, 24
copy:
    LDB r4, r0
    STB r1, r4
    ADDI r0, 1
    ADDI r1, 1
    SUBI r2, 1
    JNZ copy
    LDI r6, 0x900E
    JMP 0x9000
)";

TEST(ExecuteFromRamDifferential, SelfModifyingRamCodeAgrees) {
  const Rom rom = must_assemble(kSelfModifySource, "self-modify");
  for (const bool reference : {false, true}) {
    ArcadeMachine m(rom, {100000, reference});
    m.step_frame(0);
    EXPECT_EQ(m.fault(), Fault::kNone) << "reference=" << reference;
    EXPECT_EQ(m.cpu().reg(3), 0xAAAA) << "reference=" << reference;
    // The store into the executing stream landed before the fetch.
    EXPECT_EQ(m.cpu().reg(4), 0xCC) << "reference=" << reference;
    EXPECT_EQ(m.peek(0x900E), 0xCC) << "reference=" << reference;
  }
  expect_equivalent(rom, 12, 100000, 0x5E1F, "self-modify");
}

// The reverse direction: a snapshot round-trip must land both backends in
// the same state even when taken mid-divergence-sensitive RAM execution.
TEST(ExecuteFromRamDifferential, SnapshotRoundTripAcrossBackends) {
  const Rom rom = must_assemble(kSelfModifySource, "self-modify-snap");
  ArcadeMachine fast(rom, fast_cfg());
  fast.step_frame(1);
  fast.step_frame(2);
  const auto snap = fast.save_state();
  // Restore the fast machine's snapshot into a *reference* machine and run
  // both onward: cross-backend resume must stay in lockstep.
  ArcadeMachine ref(rom, ref_cfg());
  ASSERT_TRUE(ref.load_state(snap));
  for (int f = 0; f < 6; ++f) {
    const auto input = static_cast<InputWord>(7 * f + 1);
    fast.step_frame(input);
    ref.step_frame(input);
    ASSERT_EQ(fast.state_digest(2), ref.state_digest(2)) << "frame " << f;
  }
  EXPECT_EQ(fast.save_state(), ref.save_state());
}

// ---------------------------------------------------------------------------
// Backend identification sanity: the build knows which dispatcher it is
// running, and the reference flag actually selects the other path (guards
// against a refactor silently routing both configs to one backend).

TEST(DispatchBackend, NameMatchesCompileTimeSelection) {
  const std::string name = dispatch_backend_name();
#if defined(RTCT_THREADED_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
  EXPECT_EQ(name, "computed-goto");
#else
  EXPECT_EQ(name, "switch");
#endif
}

}  // namespace
}  // namespace rtct::emu
