// Tests for session recording / deterministic replay.
#include <gtest/gtest.h>

#include <fstream>

#include "src/chaos/fault_script.h"
#include "src/chaos/soak.h"
#include "src/common/random.h"
#include "src/core/replay.h"
#include "src/games/roms.h"
#include "src/testbed/experiment.h"

namespace rtct::core {
namespace {

Replay make_recorded_session(const char* game, int frames, std::uint64_t seed,
                             std::uint64_t* final_hash) {
  auto m = games::make_machine(game);
  Replay rec(m->content_id(), SyncConfig{});
  Rng rng(seed);
  for (int f = 0; f < frames; ++f) {
    const auto input = static_cast<InputWord>(rng.next_u64());
    m->step_frame(input);
    rec.record(input);
  }
  *final_hash = m->state_hash();
  return rec;
}

TEST(ReplayTest, SerializeParseRoundTrip) {
  std::uint64_t hash;
  const Replay rec = make_recorded_session("duel", 100, 5, &hash);
  const auto parsed = Replay::parse(rec.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->content_id(), rec.content_id());
  EXPECT_EQ(parsed->cfps(), 60);
  EXPECT_EQ(parsed->buf_frames(), 6);
  EXPECT_EQ(parsed->inputs(), rec.inputs());
}

TEST(ReplayTest, ApplyReproducesTheSessionBitExactly) {
  std::uint64_t original_hash;
  const Replay rec = make_recorded_session("torture", 200, 7, &original_hash);
  auto replica = games::make_machine("torture");
  FrameNo frames_seen = 0;
  ASSERT_TRUE(rec.apply(*replica, [&](FrameNo f, std::uint64_t) { frames_seen = f; }));
  EXPECT_EQ(frames_seen, 199);
  EXPECT_EQ(replica->state_hash(), original_hash);
}

TEST(ReplayTest, ApplyRefusesWrongGame) {
  std::uint64_t hash;
  const Replay rec = make_recorded_session("pong", 10, 1, &hash);
  auto other = games::make_machine("tron");
  EXPECT_FALSE(rec.apply(*other));
}

TEST(ReplayTest, CorruptionRejected) {
  std::uint64_t hash;
  const Replay rec = make_recorded_session("pong", 50, 2, &hash);
  auto bytes = rec.serialize();
  EXPECT_TRUE(Replay::parse(bytes).has_value());
  bytes[bytes.size() / 2] ^= 1;
  EXPECT_FALSE(Replay::parse(bytes).has_value());
  bytes[bytes.size() / 2] ^= 1;
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(Replay::parse(bytes).has_value());
  EXPECT_FALSE(Replay::parse({}).has_value());
}

TEST(ReplayTest, FileRoundTrip) {
  std::uint64_t hash;
  const Replay rec = make_recorded_session("tanks", 60, 3, &hash);
  const std::string path = ::testing::TempDir() + "/rtct_replay_test.rpl";
  ASSERT_TRUE(rec.save_file(path));
  const auto back = Replay::load_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->inputs(), rec.inputs());
  std::remove(path.c_str());
  EXPECT_FALSE(Replay::load_file("/no/such/replay.rpl").has_value());
}

TEST(ReplayTest, DistributedSessionRecordingReplaysIdentically) {
  // End-to-end: record a full two-site lockstep session in the testbed,
  // then replay either site's recording on a fresh machine and match the
  // recorded per-frame hashes.
  testbed::ExperimentConfig cfg;
  cfg.frames = 300;
  cfg.set_rtt(milliseconds(60));
  cfg.net_a_to_b.loss = 0.03;
  const auto r = testbed::run_experiment(cfg);
  ASSERT_TRUE(r.converged());

  // Both sites recorded the identical session.
  ASSERT_EQ(r.site[0].replay.inputs(), r.site[1].replay.inputs());
  ASSERT_EQ(r.site[0].replay.frames(), 300);

  auto replica = games::make_machine(cfg.game);
  std::size_t mismatches = 0;
  ASSERT_TRUE(r.site[0].replay.apply(
      *replica,
      [&](FrameNo f, std::uint64_t h) {
        if (r.site[0].timeline.records()[static_cast<std::size_t>(f)].state_hash != h) {
          ++mismatches;
        }
      },
      cfg.sync.digest_version()));
  EXPECT_EQ(mismatches, 0u);
}

TEST(ReplayTest, ChaoticSessionRecordingReplaysIdentically) {
  // The chaos-harness version of the round trip: a session driven by a
  // seeded fault script (loss bursts, stalls, path flips...) must still
  // record a replay that reproduces every frame hash on a fresh replica —
  // network chaos may stall the session but can never leak into the
  // deterministic input record.
  chaos::FaultScript script =
      chaos::generate_fault_script(21, chaos::Topology::kTwoSite);
  const testbed::ExperimentConfig cfg = chaos::lower_two_site(script);
  const auto r = testbed::run_experiment(cfg);
  ASSERT_TRUE(r.converged());
  ASSERT_EQ(r.site[0].replay.inputs(), r.site[1].replay.inputs());
  ASSERT_EQ(r.site[0].replay.frames(), script.frames);

  auto replica = cfg.game_factory();
  std::size_t mismatches = 0;
  ASSERT_TRUE(r.site[0].replay.apply(
      *replica,
      [&](FrameNo f, std::uint64_t h) {
        if (r.site[0].timeline.records()[static_cast<std::size_t>(f)].state_hash != h) {
          ++mismatches;
        }
      },
      cfg.sync.digest_version()));
  EXPECT_EQ(mismatches, 0u);
}

TEST(ReplayTest, TruncatedFileFailsCleanly) {
  std::uint64_t hash;
  const Replay rec = make_recorded_session("tanks", 60, 4, &hash);
  const std::string path = ::testing::TempDir() + "/rtct_replay_trunc.rpl";
  ASSERT_TRUE(rec.save_file(path));
  const auto full = Replay::load_file(path);
  ASSERT_TRUE(full.has_value());

  // Re-save every strict prefix a crashed or interrupted writer could
  // leave behind: all must be rejected, none may crash.
  const auto bytes = rec.serialize();
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{7}, bytes.size() / 2,
        bytes.size() - 1}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_FALSE(Replay::load_file(path).has_value()) << keep << " bytes";
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtct::core
