// Tests for session recording / deterministic replay.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>

#include "src/chaos/fault_script.h"
#include "src/chaos/soak.h"
#include "src/common/hash.h"
#include "src/common/random.h"
#include "src/core/replay.h"
#include "src/games/roms.h"
#include "src/testbed/experiment.h"

namespace rtct::core {
namespace {

Replay make_recorded_session(const char* game, int frames, std::uint64_t seed,
                             std::uint64_t* final_hash) {
  auto m = games::make_machine(game);
  Replay rec(m->content_id(), SyncConfig{});
  Rng rng(seed);
  for (int f = 0; f < frames; ++f) {
    const auto input = static_cast<InputWord>(rng.next_u64());
    m->step_frame(input);
    rec.record(input);
  }
  *final_hash = m->state_hash();
  return rec;
}

TEST(ReplayTest, SerializeParseRoundTrip) {
  std::uint64_t hash;
  const Replay rec = make_recorded_session("duel", 100, 5, &hash);
  const auto parsed = Replay::parse(rec.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->content_id(), rec.content_id());
  EXPECT_EQ(parsed->cfps(), 60);
  EXPECT_EQ(parsed->buf_frames(), 6);
  EXPECT_EQ(parsed->inputs(), rec.inputs());
}

TEST(ReplayTest, ApplyReproducesTheSessionBitExactly) {
  std::uint64_t original_hash;
  const Replay rec = make_recorded_session("torture", 200, 7, &original_hash);
  auto replica = games::make_machine("torture");
  FrameNo frames_seen = 0;
  ASSERT_TRUE(rec.apply(*replica, [&](FrameNo f, std::uint64_t) { frames_seen = f; }));
  EXPECT_EQ(frames_seen, 199);
  EXPECT_EQ(replica->state_hash(), original_hash);
}

TEST(ReplayTest, ApplyRefusesWrongGame) {
  std::uint64_t hash;
  const Replay rec = make_recorded_session("pong", 10, 1, &hash);
  auto other = games::make_machine("tron");
  EXPECT_FALSE(rec.apply(*other));
}

TEST(ReplayTest, CorruptionRejected) {
  std::uint64_t hash;
  const Replay rec = make_recorded_session("pong", 50, 2, &hash);
  auto bytes = rec.serialize();
  EXPECT_TRUE(Replay::parse(bytes).has_value());
  bytes[bytes.size() / 2] ^= 1;
  EXPECT_FALSE(Replay::parse(bytes).has_value());
  bytes[bytes.size() / 2] ^= 1;
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(Replay::parse(bytes).has_value());
  EXPECT_FALSE(Replay::parse({}).has_value());
}

TEST(ReplayTest, GameNameRoundTripsInBothContainerVersions) {
  // v1 (no keyframe policy) carries the optional name trailer too.
  auto m = games::make_machine("duel");
  SyncConfig v1_cfg;
  v1_cfg.replay_keyframe_interval = 0;  // linear recording => v1 container
  Replay v1(m->content_id(), v1_cfg, m->content_name());
  v1.record(0x0101);
  ASSERT_EQ(v1.container_version(), 1);
  auto parsed1 = Replay::parse(v1.serialize());
  ASSERT_TRUE(parsed1.has_value());
  EXPECT_EQ(parsed1->game_name(), "ac16:duel");

  SyncConfig kf_cfg;
  kf_cfg.digest_v2 = true;
  kf_cfg.replay_keyframe_interval = 10;
  Replay v2(m->content_id(), kf_cfg, "agent86:skirmish");
  for (int f = 0; f < 25; ++f) {
    m->step_frame(0);
    v2.record(0);
    if (v2.keyframe_due()) v2.record_keyframe(*m);
  }
  ASSERT_EQ(v2.container_version(), 2);
  auto parsed2 = Replay::parse(v2.serialize());
  ASSERT_TRUE(parsed2.has_value());
  EXPECT_EQ(parsed2->game_name(), "agent86:skirmish");
  // branch() propagates the name into the fork.
  EXPECT_EQ(parsed2->branch(12).game_name(), "agent86:skirmish");
}

TEST(ReplayTest, NamelessRecordingsSerializeAndParseAsBefore) {
  // A Replay with no name must serialize byte-identically to the
  // pre-field layout — and a legacy (name-less) file parses with an
  // empty name. The two halves of the compatibility promise.
  std::uint64_t hash;
  const Replay named = make_recorded_session("pong", 30, 4, &hash);
  auto bytes = named.serialize();  // make_recorded_session passes no name
  const auto parsed = Replay::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->game_name().empty());

  // Forged trailer corruption: a zero-length name field is rejected
  // outright (an honest writer omits the section instead).
  bytes.insert(bytes.end() - 8, 0x00);
  std::uint64_t crc = fnv1a64({bytes.data(), bytes.size() - 8});
  std::memcpy(bytes.data() + bytes.size() - 8, &crc, 8);
  EXPECT_FALSE(Replay::parse(bytes).has_value());

  // A declared name length that overruns the remaining bytes is rejected.
  auto good = named.serialize();
  good.insert(good.end() - 8, {0x04, 'd', 'u'});  // says 4, carries 2
  crc = fnv1a64({good.data(), good.size() - 8});
  std::memcpy(good.data() + good.size() - 8, &crc, 8);
  EXPECT_FALSE(Replay::parse(good).has_value());
}

TEST(ReplayTest, FileRoundTrip) {
  std::uint64_t hash;
  const Replay rec = make_recorded_session("tanks", 60, 3, &hash);
  const std::string path = ::testing::TempDir() + "/rtct_replay_test.rpl";
  ASSERT_TRUE(rec.save_file(path));
  const auto back = Replay::load_file(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->inputs(), rec.inputs());
  std::remove(path.c_str());
  EXPECT_FALSE(Replay::load_file("/no/such/replay.rpl").has_value());
}

TEST(ReplayTest, DistributedSessionRecordingReplaysIdentically) {
  // End-to-end: record a full two-site lockstep session in the testbed,
  // then replay either site's recording on a fresh machine and match the
  // recorded per-frame hashes.
  testbed::ExperimentConfig cfg;
  cfg.frames = 300;
  cfg.set_rtt(milliseconds(60));
  cfg.net_a_to_b.loss = 0.03;
  const auto r = testbed::run_experiment(cfg);
  ASSERT_TRUE(r.converged());

  // Both sites recorded the identical session.
  ASSERT_EQ(r.site[0].replay.inputs(), r.site[1].replay.inputs());
  ASSERT_EQ(r.site[0].replay.frames(), 300);

  auto replica = games::make_machine(cfg.game);
  std::size_t mismatches = 0;
  ASSERT_TRUE(r.site[0].replay.apply(
      *replica,
      [&](FrameNo f, std::uint64_t h) {
        if (r.site[0].timeline.records()[static_cast<std::size_t>(f)].state_hash != h) {
          ++mismatches;
        }
      },
      cfg.sync.digest_version()));
  EXPECT_EQ(mismatches, 0u);
}

TEST(ReplayTest, ChaoticSessionRecordingReplaysIdentically) {
  // The chaos-harness version of the round trip: a session driven by a
  // seeded fault script (loss bursts, stalls, path flips...) must still
  // record a replay that reproduces every frame hash on a fresh replica —
  // network chaos may stall the session but can never leak into the
  // deterministic input record.
  chaos::FaultScript script =
      chaos::generate_fault_script(21, chaos::Topology::kTwoSite);
  const testbed::ExperimentConfig cfg = chaos::lower_two_site(script);
  const auto r = testbed::run_experiment(cfg);
  ASSERT_TRUE(r.converged());
  ASSERT_EQ(r.site[0].replay.inputs(), r.site[1].replay.inputs());
  ASSERT_EQ(r.site[0].replay.frames(), script.frames);

  auto replica = cfg.game_factory();
  std::size_t mismatches = 0;
  ASSERT_TRUE(r.site[0].replay.apply(
      *replica,
      [&](FrameNo f, std::uint64_t h) {
        if (r.site[0].timeline.records()[static_cast<std::size_t>(f)].state_hash != h) {
          ++mismatches;
        }
      },
      cfg.sync.digest_version()));
  EXPECT_EQ(mismatches, 0u);
}

// ---- RTCTRPL2: keyframes, seek, branch --------------------------------------

/// Records `frames` of torture with keyframes every `interval`, capturing
/// the straight-line digest of EVERY frame under both digest versions —
/// the ground truth every random-access path must reproduce.
Replay make_keyframed_session(int frames, int interval, std::uint64_t seed,
                              std::vector<std::uint64_t>* linear_v1,
                              std::vector<std::uint64_t>* linear_v2) {
  auto m = games::make_machine("torture");
  SyncConfig cfg;
  cfg.digest_v2 = true;
  cfg.replay_keyframe_interval = interval;
  Replay rec(m->content_id(), cfg);
  Rng rng(seed);
  for (int f = 0; f < frames; ++f) {
    const auto input = static_cast<InputWord>(rng.next_u64());
    m->step_frame(input);
    rec.record(input);
    if (rec.keyframe_due()) rec.record_keyframe(*m);
    if (linear_v1 != nullptr) linear_v1->push_back(m->state_digest(1));
    if (linear_v2 != nullptr) linear_v2->push_back(m->state_digest(2));
  }
  return rec;
}

TEST(ReplayTest, SeekEqualsLinearEverywhereProperty) {
  // The RTCTRPL2 correctness property: for ANY frame f, seeking (restore
  // nearest keyframe + re-simulate) must land on the exact state the
  // straight-line replay reaches at f — under digest v1 AND v2, including
  // on/just-before/just-after every keyframe boundary.
  constexpr int kFrames = 2000;
  constexpr int kInterval = 150;
  std::vector<std::uint64_t> v1, v2;
  const Replay rec = make_keyframed_session(kFrames, kInterval, 99, &v1, &v2);
  ASSERT_EQ(rec.container_version(), 2);
  ASSERT_FALSE(rec.keyframes().empty());

  // The parsed copy must behave identically to the in-memory recording.
  const auto parsed = Replay::parse(rec.serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->keyframes(), rec.keyframes());

  std::vector<FrameNo> targets;
  Rng rng(1234);
  for (int i = 0; i < 200; ++i) {
    targets.push_back(static_cast<FrameNo>(rng.uniform(0, kFrames - 1)));
  }
  for (const ReplayKeyframe& kf : rec.keyframes()) {
    if (kf.frame > 0) targets.push_back(kf.frame - 1);
    targets.push_back(kf.frame);
    if (kf.frame + 1 < kFrames) targets.push_back(kf.frame + 1);
  }

  auto m = games::make_machine("torture");
  for (const FrameNo f : targets) {
    Replay::SeekStats st;
    const auto d1 = parsed->seek(*m, f, 1, &st);
    ASSERT_TRUE(d1.has_value()) << "frame " << f;
    EXPECT_EQ(*d1, v1[static_cast<std::size_t>(f)]) << "digest v1 at frame " << f;
    EXPECT_LT(st.resimulated, kInterval + 1) << "seek cost blew the interval bound";
    const auto d2 = parsed->seek(*m, f, 2);
    ASSERT_TRUE(d2.has_value()) << "frame " << f;
    EXPECT_EQ(*d2, v2[static_cast<std::size_t>(f)]) << "digest v2 at frame " << f;
  }
}

TEST(ReplayTest, SeekUsesNearestKeyframeAndReportsStats) {
  const Replay rec = make_keyframed_session(400, 100, 5, nullptr, nullptr);
  // Writer places keyframes at 99, 199, 299, 399.
  ASSERT_EQ(rec.keyframes().size(), 4u);
  EXPECT_EQ(rec.keyframes()[0].frame, 99);
  auto m = games::make_machine("torture");

  Replay::SeekStats st;
  ASSERT_TRUE(rec.seek(*m, 250, 0, &st).has_value());
  EXPECT_EQ(st.keyframe, 199);
  EXPECT_EQ(st.resimulated, 51);

  // Before the first keyframe: genesis restart.
  ASSERT_TRUE(rec.seek(*m, 42, 0, &st).has_value());
  EXPECT_EQ(st.keyframe, -1);
  EXPECT_EQ(st.resimulated, 43);

  // Dead on a keyframe: zero re-simulation.
  ASSERT_TRUE(rec.seek(*m, 299, 0, &st).has_value());
  EXPECT_EQ(st.keyframe, 299);
  EXPECT_EQ(st.resimulated, 0);

  // Out of range.
  EXPECT_FALSE(rec.seek(*m, 400).has_value());
  EXPECT_FALSE(rec.seek(*m, -1).has_value());
}

TEST(ReplayTest, CorruptKeyframeStateFailsSeekNotParse) {
  const Replay rec = make_keyframed_session(300, 100, 6, nullptr, nullptr);
  auto parsed = Replay::parse(rec.serialize());
  ASSERT_TRUE(parsed.has_value());
  // Flip one byte of an embedded snapshot's RAM image. parse() cannot
  // catch this (we also re-stamp nothing — the flip happens after parse),
  // but seek()'s restore-integrity check must.
  ASSERT_EQ(parsed->keyframes().size(), 3u);
  parsed->keyframes_mutable()[1].state.back() ^= 0x40;
  auto m = games::make_machine("torture");
  EXPECT_FALSE(parsed->seek(*m, 250).has_value());   // lands on keyframe 199
  EXPECT_TRUE(parsed->seek(*m, 150).has_value());    // keyframe 99 is intact
}

TEST(ReplayTest, BranchKeepsPrefixInputsAndKeyframes) {
  std::vector<std::uint64_t> v2;
  const Replay rec = make_keyframed_session(500, 100, 7, nullptr, &v2);
  const Replay cut = rec.branch(250);
  EXPECT_EQ(cut.frames(), 251);
  ASSERT_EQ(cut.keyframes().size(), 2u);  // 99 and 199
  EXPECT_EQ(cut.keyframes()[1].frame, 199);
  EXPECT_EQ(cut.content_id(), rec.content_id());

  // The fork replays to exactly the state the original had at frame 250.
  auto m = games::make_machine("torture");
  const auto d = cut.seek(*m, 250, 2);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, v2[250]);

  // Branch past the end is a full copy; branch before 0 is empty.
  EXPECT_EQ(rec.branch(10'000).frames(), 500);
  EXPECT_EQ(rec.branch(-1).frames(), 0);
}

TEST(ReplayTest, V1ContainerStillParsesAndReplays) {
  // Writers with keyframes disabled must keep emitting the PR-1 linear
  // container, and the parser must keep accepting it.
  auto m = games::make_machine("duel");
  SyncConfig cfg;
  cfg.replay_keyframe_interval = 0;
  Replay rec(m->content_id(), cfg);
  Rng rng(8);
  for (int f = 0; f < 120; ++f) {
    const auto input = static_cast<InputWord>(rng.next_u64());
    m->step_frame(input);
    rec.record(input);
  }
  EXPECT_FALSE(rec.keyframe_due());  // interval 0: never due
  EXPECT_EQ(rec.container_version(), 1);
  const auto bytes = rec.serialize();
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(std::memcmp(bytes.data(), "RTCTRPL1", 8), 0);

  const auto parsed = Replay::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->container_version(), 1);
  EXPECT_EQ(parsed->keyframe_interval(), 0);
  EXPECT_TRUE(parsed->keyframes().empty());
  EXPECT_EQ(parsed->inputs(), rec.inputs());
  auto replica = games::make_machine("duel");
  ASSERT_TRUE(parsed->apply(*replica));
  EXPECT_EQ(replica->state_hash(), m->state_hash());
}

TEST(ReplayTest, ForgedFrameCountRejectedBeforeAllocation) {
  // Regression for the header-trust bug: a v1/v2 container whose declared
  // frame count exceeds the actual payload must be rejected up front —
  // previously the parser reserved `count` entries first, so a 16M forged
  // count in a 100-byte file was an OOM lever. The CRC is re-stamped so
  // this exercises the count validation itself, not the checksum.
  const auto forge = [](std::vector<std::uint8_t> bytes, std::size_t count_off) {
    const std::uint32_t huge = 0x00FF'FFFFu;
    std::memcpy(bytes.data() + count_off, &huge, 4);
    const std::uint64_t crc = fnv1a64({bytes.data(), bytes.size() - 8});
    std::memcpy(bytes.data() + bytes.size() - 8, &crc, 8);
    return bytes;
  };

  std::uint64_t hash;
  SyncConfig v1cfg;
  v1cfg.replay_keyframe_interval = 0;
  auto m = games::make_machine("pong");
  Replay v1rec(m->content_id(), v1cfg);
  for (int f = 0; f < 50; ++f) v1rec.record(static_cast<InputWord>(f));
  // v1 layout: count at offset 24; v2 layout: count at offset 29.
  EXPECT_FALSE(Replay::parse(forge(v1rec.serialize(), 24)).has_value());

  const Replay v2rec = make_recorded_session("pong", 50, 2, &hash);
  ASSERT_EQ(v2rec.container_version(), 2);
  EXPECT_FALSE(Replay::parse(forge(v2rec.serialize(), 29)).has_value());
}

TEST(ReplayTest, LockstepTestbedSessionEmbedsKeyframes) {
  // End-to-end: the distributed lockstep driver itself must now produce a
  // seekable recording whose keyframes agree with its own timeline.
  testbed::ExperimentConfig cfg;
  cfg.frames = 300;
  cfg.sync.replay_keyframe_interval = 90;
  cfg.set_rtt(milliseconds(40));
  const auto r = testbed::run_experiment(cfg);
  ASSERT_TRUE(r.converged());
  const Replay& rep = r.site[0].replay;
  ASSERT_EQ(rep.frames(), 300);
  ASSERT_EQ(rep.keyframes().size(), 3u);  // 89, 179, 269
  EXPECT_EQ(rep.keyframes()[0].frame, 89);
  for (const ReplayKeyframe& kf : rep.keyframes()) {
    EXPECT_EQ(kf.digest,
              r.site[0].timeline.records()[static_cast<std::size_t>(kf.frame)].state_hash);
  }
  // Both sites embed identical keyframes — the recording stays
  // site-independent in v2 exactly as it was in v1.
  EXPECT_EQ(r.site[0].replay.serialize(), r.site[1].replay.serialize());

  auto replica = games::make_machine(cfg.game);
  const auto d = rep.seek(*replica, 200);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, r.site[0].timeline.records()[200].state_hash);
}

TEST(ReplayTest, RollbackTestbedSessionEmbedsConfirmedKeyframes) {
  // Under rollback the recorder may only snapshot *confirmed* state; the
  // keyframes land at the first confirmed watermark past each interval
  // (not exact multiples), and every one must match the backfilled
  // confirmed timeline digest.
  testbed::ExperimentConfig cfg;
  cfg.frames = 300;
  cfg.sync.rollback = true;
  cfg.sync.replay_keyframe_interval = 90;
  cfg.set_rtt(milliseconds(40));
  const auto r = testbed::run_experiment(cfg);
  ASSERT_TRUE(r.converged());
  ASSERT_TRUE(r.site[0].rollback_mode);
  const Replay& rep = r.site[0].replay;
  ASSERT_GE(rep.keyframes().size(), 2u);
  FrameNo prev = -1;
  for (const ReplayKeyframe& kf : rep.keyframes()) {
    EXPECT_GT(kf.frame, prev);
    prev = kf.frame;
    ASSERT_LT(kf.frame, rep.frames());  // confirmed frames only
    EXPECT_EQ(kf.digest,
              r.site[0].timeline.records()[static_cast<std::size_t>(kf.frame)].state_hash);
  }
  // Seek through an embedded confirmed snapshot reproduces the timeline.
  auto replica = games::make_machine(cfg.game);
  const FrameNo target = rep.keyframes().back().frame;
  const auto d = rep.seek(*replica, target);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, r.site[0].timeline.records()[static_cast<std::size_t>(target)].state_hash);
}

TEST(ReplayTest, TruncatedFileFailsCleanly) {
  std::uint64_t hash;
  const Replay rec = make_recorded_session("tanks", 60, 4, &hash);
  const std::string path = ::testing::TempDir() + "/rtct_replay_trunc.rpl";
  ASSERT_TRUE(rec.save_file(path));
  const auto full = Replay::load_file(path);
  ASSERT_TRUE(full.has_value());

  // Re-save every strict prefix a crashed or interrupted writer could
  // leave behind: all must be rejected, none may crash.
  const auto bytes = rec.serialize();
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, std::size_t{7}, bytes.size() / 2,
        bytes.size() - 1}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_FALSE(Replay::load_file(path).has_value()) << keep << " bytes";
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtct::core
