// Unit tests for the wire codec: round trips and hostile-input handling.
#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/common/bytes.h"
#include "src/core/config.h"
#include "src/core/wire.h"

namespace rtct::core {
namespace {

TEST(WireTest, SyncMsgRoundTrip) {
  SyncMsg m;
  m.site = 1;
  m.ack_frame = 123;
  m.first_frame = 100;
  m.inputs = {0x0001, 0x1200, 0xFFFF};
  m.send_time = milliseconds(4567);
  m.echo_time = milliseconds(4500);
  m.echo_hold = milliseconds(3);

  const auto bytes = encode_message(Message{m});
  const auto decoded = decode_message(bytes);
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<SyncMsg>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->site, 1);
  EXPECT_EQ(out->ack_frame, 123);
  EXPECT_EQ(out->first_frame, 100);
  EXPECT_EQ(out->inputs, m.inputs);
  EXPECT_EQ(out->last_frame(), 102);
  EXPECT_EQ(out->send_time, m.send_time);
  EXPECT_EQ(out->echo_time, m.echo_time);
  EXPECT_EQ(out->echo_hold, m.echo_hold);
}

TEST(WireTest, EmptyInputsSyncMsgIsPureAck) {
  SyncMsg m;
  m.site = 0;
  m.ack_frame = 50;
  m.first_frame = 51;
  const auto decoded = decode_message(encode_message(Message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::get<SyncMsg>(*decoded).inputs.empty());
}

TEST(WireTest, HelloRoundTrip) {
  HelloMsg h;
  h.site = 1;
  h.protocol_version = kProtocolVersion;
  h.rom_checksum = 0xDEADBEEFCAFEF00Dull;
  h.cfps = 60;
  h.buf_frames = 6;
  const auto decoded = decode_message(encode_message(Message{h}));
  ASSERT_TRUE(decoded.has_value());
  const auto& out = std::get<HelloMsg>(*decoded);
  EXPECT_EQ(out.rom_checksum, h.rom_checksum);
  EXPECT_EQ(out.cfps, 60);
  EXPECT_EQ(out.buf_frames, 6);
  // v2 fields keep their "unset" defaults through the codec.
  EXPECT_EQ(out.hello_time, 0);
  EXPECT_EQ(out.echo_time, -1);
  EXPECT_EQ(out.adv_rtt, -1);
  EXPECT_EQ(out.flags, 0);
  EXPECT_EQ(out.redundancy, 0);
}

TEST(WireTest, HelloV2FieldsRoundTrip) {
  HelloMsg h;
  h.site = 0;
  h.protocol_version = kProtocolVersion;
  h.hello_time = milliseconds(150);
  h.echo_time = milliseconds(100);
  h.echo_hold = milliseconds(7);
  h.adv_rtt = milliseconds(42);
  h.flags = kHelloFlagAdaptiveLag;
  h.redundancy = 2;
  const auto decoded = decode_message(encode_message(Message{h}));
  ASSERT_TRUE(decoded.has_value());
  const auto& out = std::get<HelloMsg>(*decoded);
  EXPECT_EQ(out.hello_time, milliseconds(150));
  EXPECT_EQ(out.echo_time, milliseconds(100));
  EXPECT_EQ(out.echo_hold, milliseconds(7));
  EXPECT_EQ(out.adv_rtt, milliseconds(42));
  EXPECT_EQ(out.flags, kHelloFlagAdaptiveLag);
  EXPECT_EQ(out.redundancy, 2);
}

TEST(WireTest, StartRoundTrip) {
  const auto decoded = decode_message(encode_message(Message{StartMsg{0}}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<StartMsg>(*decoded).site, 0);
  EXPECT_EQ(std::get<StartMsg>(*decoded).buf_frames, 0);  // 0 = fixed lag
}

TEST(WireTest, StartCarriesNegotiatedBufFrames) {
  StartMsg s;
  s.site = 0;
  s.buf_frames = 17;
  const auto decoded = decode_message(encode_message(Message{s}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<StartMsg>(*decoded).buf_frames, 17);
}

TEST(WireTest, StartCarriesDigestFlags) {
  StartMsg s;
  s.site = 1;
  s.buf_frames = 6;
  s.flags = kFlagStateDigestV2;
  const auto decoded = decode_message(encode_message(Message{s}));
  ASSERT_TRUE(decoded.has_value());
  const auto& out = std::get<StartMsg>(*decoded);
  EXPECT_EQ(out.flags, kFlagStateDigestV2);
  EXPECT_EQ(out.buf_frames, 6);
  // flags defaults to 0 and round-trips as such (v1-digest sessions).
  const auto plain = decode_message(encode_message(Message{StartMsg{0}}));
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(std::get<StartMsg>(*plain).flags, 0);
}

TEST(WireTest, EncodeIntoMatchesEncode) {
  // The reuse-buffer encoder must be byte-identical to the allocating one,
  // including when the scratch arrives dirty and over-sized.
  SyncMsg m;
  m.ack_frame = 41;
  m.first_frame = 42;
  m.inputs = {0x1111, 0x2222, 0x3333};
  std::vector<std::uint8_t> scratch(512, 0xEE);
  encode_message_into(Message{m}, scratch);
  EXPECT_EQ(scratch, encode_message(Message{m}));

  SnapshotMsg snap;
  snap.frame = 99;
  snap.state = {1, 2, 3, 4, 5};
  encode_message_into(Message{snap}, scratch);
  EXPECT_EQ(scratch, encode_message(Message{snap}));
}

TEST(WireTest, EncodeSnapshotIntoMatchesMessagePath) {
  // The hub's hand-rolled snapshot encoder (no SnapshotMsg copy of the
  // state vector) must produce the exact bytes of the ordinary path.
  const std::vector<std::uint8_t> state = {9, 8, 7, 6, 5, 4, 3, 2, 1};
  SnapshotMsg snap;
  snap.frame = 0;  // the earliest frame the decoder accepts
  snap.state = state;
  std::vector<std::uint8_t> direct;
  encode_snapshot_into(snap.frame, state, direct);
  EXPECT_EQ(direct, encode_message(Message{snap}));
  const auto decoded = decode_message(direct);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<SnapshotMsg>(*decoded).state, state);
}

TEST(WireTest, NegativeFramesSurvive) {
  // LastAckFrame starts at BufFrame-1; with BufFrame=0 frames could be -1.
  SyncMsg m;
  m.ack_frame = -1;
  m.first_frame = 0;
  m.echo_time = -1;
  const auto decoded = decode_message(encode_message(Message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<SyncMsg>(*decoded).ack_frame, -1);
  EXPECT_EQ(std::get<SyncMsg>(*decoded).echo_time, -1);
}

// ---- hostile input -----------------------------------------------------------

TEST(WireTest, OutOfRangeFieldsRejected) {
  // docs/PROTOCOL.md "Decoder rejection rules": every frame number and
  // timestamp has a documented floor and a 2^48 ceiling; a forged field
  // outside its range must kill the whole message at decode time.
  const auto rejected = [](const Message& m) {
    return !decode_message(encode_message(m)).has_value();
  };

  SyncMsg sync;
  sync.first_frame = -1;  // floor is 0: inputs for frame -1 don't exist
  EXPECT_TRUE(rejected(Message{sync}));
  sync = {};
  sync.first_frame = FrameNo{1} << 48;  // at the ceiling
  EXPECT_TRUE(rejected(Message{sync}));
  sync = {};
  sync.ack_frame = -2;  // below the -1 sentinel
  EXPECT_TRUE(rejected(Message{sync}));
  sync = {};
  sync.send_time = -1;  // timestamps are never negative
  EXPECT_TRUE(rejected(Message{sync}));

  HelloMsg hello;
  hello.hello_time = -5;
  EXPECT_TRUE(rejected(Message{hello}));
  hello = {};
  hello.echo_time = -2;
  EXPECT_TRUE(rejected(Message{hello}));

  SnapshotMsg snap;
  snap.frame = -1;  // no producer snapshots before frame 0
  EXPECT_TRUE(rejected(Message{snap}));
  snap.frame = 0;
  EXPECT_FALSE(rejected(Message{snap}));

  InputFeedMsg feed;
  feed.first_frame = -1;
  EXPECT_TRUE(rejected(Message{feed}));

  FeedAckMsg ack;
  ack.frame = -2;  // -1 is the legitimate pre-game ack sentinel
  EXPECT_TRUE(rejected(Message{ack}));
  ack.frame = -1;
  EXPECT_FALSE(rejected(Message{ack}));
}

TEST(WireTest, MaxInRangeFrameSurvives) {
  SyncMsg m;
  m.first_frame = (FrameNo{1} << 48) - 1;
  m.ack_frame = (FrameNo{1} << 48) - 1;
  const auto decoded = decode_message(encode_message(Message{m}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<SyncMsg>(*decoded).first_frame, (FrameNo{1} << 48) - 1);
}

TEST(WireTest, EmptyAndUnknownTypeRejected) {
  EXPECT_FALSE(decode_message({}).has_value());
  const std::uint8_t junk[] = {0x7F, 1, 2, 3};
  EXPECT_FALSE(decode_message(junk).has_value());
}

TEST(WireTest, TruncationAtEveryPrefixRejected) {
  SyncMsg m;
  m.site = 1;
  m.inputs = {1, 2, 3, 4};
  const auto bytes = encode_message(Message{m});
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(decode_message({bytes.data(), n}).has_value()) << "prefix " << n;
  }
}

TEST(WireTest, TrailingGarbageRejected) {
  auto bytes = encode_message(Message{StartMsg{0}});
  bytes.push_back(0xAA);
  EXPECT_FALSE(decode_message(bytes).has_value());
}

TEST(WireTest, AbsurdInputCountRejected) {
  // Hand-craft a sync header claiming 2^31 inputs; must fail fast, not OOM.
  ByteWriter w;
  w.u8(3);  // kSync
  w.i32(0);
  w.i64(0);
  w.i64(0);
  w.u32(0x80000000u);
  const auto data = w.take();
  EXPECT_FALSE(decode_message(data).has_value());
}

TEST(WireTest, ForgedCountBeyondPayloadRejected) {
  // Regression: decode used to reserve() for the claimed count BEFORE
  // checking the reader held 2 bytes per input — a short forged datagram
  // claiming n = kMaxWireInputs (4096) cost an 8 KiB allocation per packet
  // before the bounds check failed. The count must be validated against
  // the bytes actually present first.
  {
    ByteWriter w;  // 16-byte kSync datagram claiming 4096 inputs
    w.u8(3);       // kSync
    w.i32(1);      // site
    w.i64(0);      // ack_frame
    w.i64(0);      // first_frame
    w.u32(4096);   // forged count, zero payload behind it
    const auto data = w.take();
    EXPECT_FALSE(decode_message(data).has_value());
  }
  {
    ByteWriter w;  // kInputFeed: same forgery
    w.u8(6);
    w.i64(0);      // first_frame
    w.u32(4096);
    const auto data = w.take();
    EXPECT_FALSE(decode_message(data).has_value());
  }
  {
    ByteWriter w;  // kSnapshot claiming a 1 MiB body it does not carry
    w.u8(5);
    w.i64(0);      // frame
    w.u32(1u << 20);
    const auto data = w.take();
    EXPECT_FALSE(decode_message(data).has_value());
  }
}

TEST(WireTest, RandomBytesNeverCrash) {
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> noise(rng.uniform(0, 64));
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_u64());
    (void)decode_message(noise);  // must not crash or throw
  }
}

TEST(WireTest, BitFlippedMessagesNeverCrash) {
  SyncMsg m;
  m.site = 0;
  m.inputs = {7, 8, 9};
  const auto bytes = encode_message(Message{m});
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    auto copy = bytes;
    copy[rng.uniform(0, static_cast<std::int64_t>(copy.size()) - 1)] ^=
        static_cast<std::uint8_t>(1u << rng.uniform(0, 7));
    (void)decode_message(copy);
  }
}

}  // namespace
}  // namespace rtct::core
