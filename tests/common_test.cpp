// Unit tests for rtct_common: serialization, hashing, statistics, RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/common/random.h"
#include "src/common/stats.h"
#include "src/common/time.h"
#include "src/common/types.h"

namespace rtct {
namespace {

// ---- bytes ----------------------------------------------------------------

TEST(BytesTest, RoundTripsAllWidths) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i8(-5);
  w.i16(-12345);
  w.i32(-123456789);
  w.i64(-1234567890123456789ll);
  w.str("hello");

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i8(), -5);
  EXPECT_EQ(r.i16(), -12345);
  EXPECT_EQ(r.i32(), -123456789);
  EXPECT_EQ(r.i64(), -1234567890123456789ll);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.at_end());
}

TEST(BytesTest, LittleEndianOnTheWire) {
  ByteWriter w;
  w.u16(0x1234);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(w.data()[0], 0x34);
  EXPECT_EQ(w.data()[1], 0x12);
}

TEST(BytesTest, OverrunPoisonsReaderAndReturnsZeros) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_EQ(r.u32(), 0u);  // past the end
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // stays poisoned
  EXPECT_FALSE(r.ok());
}

TEST(BytesTest, BytesSpanIsBoundsChecked) {
  ByteWriter w;
  w.u32(0x01020304);
  ByteReader r(w.data());
  auto s = r.bytes(3);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(r.ok());
  auto over = r.bytes(5);
  EXPECT_TRUE(over.empty());
  EXPECT_FALSE(r.ok());
}

TEST(BytesTest, TruncatedStringFails) {
  ByteWriter w;
  w.str("truncate me");
  auto bytes = w.take();
  bytes.resize(bytes.size() - 3);
  ByteReader r(bytes);
  (void)r.str();
  EXPECT_FALSE(r.ok());
}

TEST(BytesTest, EmptyReaderIsAtEnd) {
  ByteReader r({});
  EXPECT_TRUE(r.at_end());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

// ---- hash -----------------------------------------------------------------

TEST(HashTest, KnownFnvVector) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(fnv1a64({}), kFnvOffset);
  // "a" => well-known value.
  const std::uint8_t a[] = {'a'};
  EXPECT_EQ(fnv1a64(a), 0xaf63dc4c8601ec8cull);
}

TEST(HashTest, IncrementalMatchesOneShot) {
  const std::uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8};
  Fnv1a64 h;
  h.update(std::span<const std::uint8_t>(data, 3));
  h.update(std::span<const std::uint8_t>(data + 3, 5));
  EXPECT_EQ(h.digest(), fnv1a64(data));
}

TEST(HashTest, SinkAliasesMatchByteEncoding) {
  // Hashing u16/u32/u64 through the sink API must equal hashing the
  // little-endian bytes (so visit_state digests match serialized bytes).
  ByteWriter w;
  w.u16(0x1234);
  w.u32(0x89ABCDEF);
  w.u64(0x1122334455667788ull);

  Fnv1a64 h;
  h.u16(0x1234);
  h.u32(0x89ABCDEF);
  h.u64(0x1122334455667788ull);
  EXPECT_EQ(h.digest(), fnv1a64(w.data()));
}

TEST(HashTest, WordAtATimeMatchesReferenceByteLoop) {
  // Fnv1a64::update consumes 8-byte chunks on the hot path; FNV-1a is
  // byte-serial by definition, so the digest must equal the textbook
  // byte loop for every length (tails) and split point (alignment).
  auto reference = [](std::span<const std::uint8_t> data) {
    std::uint64_t h = kFnvOffset;
    for (std::uint8_t b : data) h = (h ^ b) * kFnvPrime;
    return h;
  };
  std::vector<std::uint8_t> data(257);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  for (std::size_t len = 0; len <= data.size(); ++len) {
    const std::span<const std::uint8_t> s(data.data(), len);
    ASSERT_EQ(fnv1a64(s), reference(s)) << "length " << len;
  }
  // Split mid-word: incremental updates may leave the accumulator at any
  // byte offset, the next chunk must still fold identically.
  for (std::size_t split = 0; split <= 24; ++split) {
    Fnv1a64 h;
    h.update(std::span<const std::uint8_t>(data.data(), split));
    h.update(std::span<const std::uint8_t>(data.data() + split, 100));
    ASSERT_EQ(h.digest(), reference({data.data(), split + 100})) << "split " << split;
  }
}

TEST(HashTest, SensitiveToEveryByte) {
  std::vector<std::uint8_t> data(64, 0);
  const auto base = fnv1a64(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = 1;
    EXPECT_NE(fnv1a64(data), base) << "byte " << i;
    data[i] = 0;
  }
}

// ---- stats ----------------------------------------------------------------

TEST(StatsTest, PaperFootnote10MeanAbsDeviation) {
  // Footnote 10: avg deviation of {1,2,3,4} around mean 2.5 is 1.0.
  Series s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  const auto sum = s.summarize();
  EXPECT_DOUBLE_EQ(sum.mean, 2.5);
  EXPECT_DOUBLE_EQ(sum.mean_abs_deviation, 1.0);
}

TEST(StatsTest, PaperFootnote11AbsoluteAverage) {
  // Footnote 11: absolute average of {-3, 1, -1, 3} is 2.
  Series s;
  for (double x : {-3.0, 1.0, -1.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.summarize().mean_abs, 2.0);
  EXPECT_DOUBLE_EQ(s.summarize().mean, 0.0);
}

TEST(StatsTest, MinMaxStddevPercentiles) {
  Series s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  const auto sum = s.summarize();
  EXPECT_DOUBLE_EQ(sum.min, 1);
  EXPECT_DOUBLE_EQ(sum.max, 100);
  EXPECT_DOUBLE_EQ(sum.mean, 50.5);
  EXPECT_NEAR(sum.p50, 50.5, 1e-9);
  EXPECT_NEAR(sum.p95, 95.05, 1e-9);
  EXPECT_NEAR(sum.stddev, std::sqrt(833.25), 1e-9);
}

TEST(StatsTest, EmptySeriesIsAllZero) {
  const auto sum = Series{}.summarize();
  EXPECT_EQ(sum.count, 0u);
  EXPECT_EQ(sum.mean, 0);
  EXPECT_EQ(sum.p99, 0);
}

TEST(StatsTest, SingleSampleHasZeroDeviation) {
  Series s;
  s.add(42);
  const auto sum = s.summarize();
  EXPECT_DOUBLE_EQ(sum.mean, 42);
  EXPECT_DOUBLE_EQ(sum.mean_abs_deviation, 0);
  EXPECT_DOUBLE_EQ(sum.p50, 42);
}

TEST(StatsTest, ConsecutiveDeltasTurnStartTimesIntoFrameTimes) {
  const std::vector<double> starts = {0, 16.7, 33.4, 60.0};
  const auto deltas = consecutive_deltas(starts);
  ASSERT_EQ(deltas.size(), 3u);
  EXPECT_NEAR(deltas[0], 16.7, 1e-9);
  EXPECT_NEAR(deltas[2], 26.6, 1e-9);
  EXPECT_TRUE(consecutive_deltas({1.0}).empty());
}

TEST(StatsTest, AddDurStoresMilliseconds) {
  Series s;
  s.add_dur(milliseconds(5));
  EXPECT_DOUBLE_EQ(s.samples()[0], 5.0);
}

// ---- rng ------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformCoversRangeInclusive) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform(3, 8));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 8);
  EXPECT_EQ(r.uniform(5, 5), 5);
  EXPECT_EQ(r.uniform(9, 2), 9);  // degenerate range clamps to lo
}

TEST(RngTest, BernoulliFrequency) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
}

TEST(RngTest, NormalMoments) {
  Rng r(13);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, JitterRespectsLowerBound) {
  Rng r(15);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(r.jitter(milliseconds(1), milliseconds(10), 0), 0);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng r(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, ForkIsIndependentStream) {
  Rng a(21);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

// ---- time / types ----------------------------------------------------------

TEST(TimeTest, UnitsAndConversions) {
  EXPECT_EQ(milliseconds(1), 1000 * microseconds(1));
  EXPECT_EQ(seconds(1), 1000 * milliseconds(1));
  EXPECT_DOUBLE_EQ(to_ms(milliseconds(250)), 250.0);
  EXPECT_EQ(frame_period(60), 16666666);
  EXPECT_EQ(frame_period(50), 20000000);
}

TEST(TypesTest, SiteBitPartitionIsDisjointAndComplete) {
  // The paper's SET[j] ∩ SET[k] = {} requirement.
  EXPECT_EQ(site_input_mask(0) & site_input_mask(1), 0);
  EXPECT_EQ(site_input_mask(0) | site_input_mask(1), 0xFFFF);
  EXPECT_EQ(site_input_mask(kNoSite), 0);
}

TEST(TypesTest, MergeAndExtractRoundTrip) {
  const InputWord full = make_input(0xAB, 0xCD);
  EXPECT_EQ(player_byte(full, 0), 0xAB);
  EXPECT_EQ(player_byte(full, 1), 0xCD);
  EXPECT_EQ(site_bits(full, 0), 0x00AB);
  EXPECT_EQ(site_bits(full, 1), 0xCD00);

  InputWord w = 0;
  w = merge_site_bits(w, site_bits(full, 0), 0);
  w = merge_site_bits(w, site_bits(full, 1), 1);
  EXPECT_EQ(w, full);
}

TEST(TypesTest, MergeReplacesOnlyOwnBits) {
  InputWord w = make_input(0x11, 0x22);
  w = merge_site_bits(w, make_input(0xFF, 0xEE), 0);  // only p0 bits move
  EXPECT_EQ(player_byte(w, 0), 0xFF);
  EXPECT_EQ(player_byte(w, 1), 0x22);
}

}  // namespace
}  // namespace rtct
