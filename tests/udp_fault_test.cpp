// UdpSocket error-path regressions, driven through the syscall-injection
// seam (set_udp_syscalls_for_test): EINTR retries, soft-vs-hard error
// accounting, and the constructor's guarantee that every failure path
// closes the fd. Real sockets, fake syscalls — no network flakiness.
#include "src/net/udp_socket.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>

#include "src/common/telemetry.h"
#include "src/net/udp_syscalls.h"

namespace rtct::net {
namespace {

// The scripted syscall table: each hook consumes a per-call plan (errno to
// fail with, or -1 meaning "pass through to the real syscall").
struct FaultPlan {
  int fail_sends_with = -1;   // errno for send/sendto, or -1 = real call
  int fail_recvs_with = -1;   // errno for recv/recvfrom, or -1 = real call
  int eintr_first_n = 0;      // interrupt the first N calls before honouring
                              // the plan (exercises the retry loop)
  int calls_seen = 0;
};
FaultPlan g_plan;

ssize_t fake_send(int fd, const void* buf, size_t len, int flags) {
  if (g_plan.calls_seen++ < g_plan.eintr_first_n) {
    errno = EINTR;
    return -1;
  }
  if (g_plan.fail_sends_with >= 0) {
    errno = g_plan.fail_sends_with;
    return -1;
  }
  return ::send(fd, buf, len, flags);
}

ssize_t fake_sendto(int fd, const void* buf, size_t len, int flags,
                    const sockaddr* to, socklen_t tolen) {
  if (g_plan.calls_seen++ < g_plan.eintr_first_n) {
    errno = EINTR;
    return -1;
  }
  if (g_plan.fail_sends_with >= 0) {
    errno = g_plan.fail_sends_with;
    return -1;
  }
  return ::sendto(fd, buf, len, flags, to, tolen);
}

ssize_t fake_recv(int fd, void* buf, size_t len, int flags) {
  if (g_plan.calls_seen++ < g_plan.eintr_first_n) {
    errno = EINTR;
    return -1;
  }
  if (g_plan.fail_recvs_with >= 0) {
    errno = g_plan.fail_recvs_with;
    return -1;
  }
  return ::recv(fd, buf, len, flags);
}

ssize_t fake_recvfrom(int fd, void* buf, size_t len, int flags, sockaddr* from,
                      socklen_t* fromlen) {
  if (g_plan.calls_seen++ < g_plan.eintr_first_n) {
    errno = EINTR;
    return -1;
  }
  if (g_plan.fail_recvs_with >= 0) {
    errno = g_plan.fail_recvs_with;
    return -1;
  }
  return ::recvfrom(fd, buf, len, flags, from, fromlen);
}

const UdpSyscalls kFakeTable{fake_send, fake_sendto, fake_recv, fake_recvfrom};

class UdpFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_plan = FaultPlan{};
    set_udp_syscalls_for_test(&kFakeTable);
  }
  void TearDown() override { set_udp_syscalls_for_test(nullptr); }
};

std::size_t open_fd_count() {
  std::size_t n = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++n;
  }
  return n;
}

std::vector<std::uint8_t> payload() { return {1, 2, 3, 4}; }

TEST_F(UdpFaultTest, EintrSendIsRetriedNotDropped) {
  UdpSocket a("127.0.0.1", 0);
  UdpSocket b("127.0.0.1", 0);
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  ASSERT_TRUE(a.connect_peer("127.0.0.1", b.local_port()));

  g_plan.eintr_first_n = 3;  // three interrupts, then the real send
  a.send(payload());
  EXPECT_EQ(a.eintr_retries(), 3u);
  EXPECT_EQ(a.datagrams_sent(), 1u);
  EXPECT_EQ(a.send_soft_drops(), 0u);
  EXPECT_EQ(a.send_errors(), 0u);

  ASSERT_TRUE(b.wait_readable(seconds(1)));
  g_plan = FaultPlan{};
  const auto got = b.recv_from();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->first, payload());
}

TEST_F(UdpFaultTest, EintrRecvIsRetried) {
  UdpSocket a("127.0.0.1", 0);
  UdpSocket b("127.0.0.1", 0);
  ASSERT_TRUE(a.connect_peer("127.0.0.1", b.local_port()));
  a.send(payload());
  ASSERT_TRUE(b.wait_readable(seconds(1)));

  g_plan = FaultPlan{};  // the setup send consumed calls_seen ticks
  g_plan.eintr_first_n = 2;
  const auto got = b.recv_from();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(b.eintr_retries(), 2u);
  EXPECT_EQ(b.recv_errors(), 0u);
}

TEST_F(UdpFaultTest, SoftSendErrnosCountAsDropsNotErrors) {
  UdpSocket a("127.0.0.1", 0);
  UdpSocket b("127.0.0.1", 0);
  ASSERT_TRUE(a.connect_peer("127.0.0.1", b.local_port()));

  for (const int e : {EAGAIN, EWOULDBLOCK, ENOBUFS}) {
    g_plan.fail_sends_with = e;
    a.send(payload());
  }
  // EAGAIN and EWOULDBLOCK may alias; count calls, not distinct errnos.
  EXPECT_EQ(a.send_soft_drops(), 3u);
  EXPECT_EQ(a.send_errors(), 0u);
  EXPECT_EQ(a.datagrams_sent(), 0u);
}

TEST_F(UdpFaultTest, HardSendErrnoCountsAsError) {
  UdpSocket a("127.0.0.1", 0);
  UdpSocket b("127.0.0.1", 0);
  ASSERT_TRUE(a.connect_peer("127.0.0.1", b.local_port()));

  g_plan.fail_sends_with = EPERM;  // e.g. iptables REJECT on the egress path
  a.send(payload());
  g_plan.fail_sends_with = ENETUNREACH;
  const auto addr = make_udp_address("127.0.0.1", b.local_port());
  ASSERT_TRUE(addr.has_value());
  a.send_to(*addr, payload());

  EXPECT_EQ(a.send_errors(), 2u);
  EXPECT_EQ(a.send_soft_drops(), 0u);
  EXPECT_EQ(a.datagrams_sent(), 0u);
}

TEST_F(UdpFaultTest, SoftRecvErrnosAreSilentHardOnesCounted) {
  UdpSocket a("127.0.0.1", 0);
  ASSERT_TRUE(a.valid());

  // ECONNREFUSED: the loopback ICMP bounce a connected socket surfaces
  // after sending to a dead peer — routine during session startup races.
  for (const int e : {EAGAIN, ECONNREFUSED}) {
    g_plan.fail_recvs_with = e;
    EXPECT_FALSE(a.try_recv().has_value());
  }
  EXPECT_EQ(a.recv_errors(), 0u);

  g_plan.fail_recvs_with = EBADF;
  EXPECT_FALSE(a.try_recv().has_value());
  g_plan.fail_recvs_with = ENOMEM;
  EXPECT_FALSE(a.recv_from().has_value());
  EXPECT_EQ(a.recv_errors(), 2u);
}

TEST_F(UdpFaultTest, CountersSurviveIntoMetricsExport) {
  UdpSocket a("127.0.0.1", 0);
  UdpSocket b("127.0.0.1", 0);
  ASSERT_TRUE(a.connect_peer("127.0.0.1", b.local_port()));

  g_plan.eintr_first_n = 1;
  g_plan.fail_sends_with = ENOBUFS;
  a.send(payload());  // 1 EINTR retry, then a soft drop
  g_plan = FaultPlan{};
  g_plan.fail_recvs_with = EBADF;
  (void)a.try_recv();

  MetricsRegistry reg;
  a.export_metrics(reg);
  EXPECT_EQ(reg.value("net.udp.send_soft_drops"), 1);
  EXPECT_EQ(reg.value("net.udp.recv_errors"), 1);
  EXPECT_EQ(reg.value("net.udp.eintr_retries"), 1);
  EXPECT_EQ(reg.value("net.udp.send_errors"), 0);
}

TEST(UdpFdLeakTest, ConstructorFailurePathsCloseTheFd) {
  // Bind failures must not leak the just-created fd: construct many
  // sockets through every constructor failure path and assert the
  // process's fd count is flat. (The relay churns through sockets in
  // tests; a per-failure leak exhausts the fd table within minutes.)
  const std::size_t before = open_fd_count();
  for (int i = 0; i < 64; ++i) {
    UdpSocket bad_ip("999.not.an.ip", 0);  // inet_pton failure path
    EXPECT_FALSE(bad_ip.valid());
    EXPECT_NE(bad_ip.last_error().find("inet_pton"), std::string::npos);

    UdpSocket bad_bind("8.8.8.8", 1);  // bind failure path (foreign addr)
    EXPECT_FALSE(bad_bind.valid());
  }
  EXPECT_EQ(open_fd_count(), before);
}

TEST(UdpFdLeakTest, InvalidSocketOperationsAreInertAndErrorIsStable) {
  UdpSocket bad("999.not.an.ip", 0);
  ASSERT_FALSE(bad.valid());
  const std::string err = bad.last_error();
  EXPECT_FALSE(err.empty());

  // Every operation on a failed socket is a harmless no-op.
  bad.send(std::vector<std::uint8_t>{1});
  EXPECT_FALSE(bad.try_recv().has_value());
  EXPECT_FALSE(bad.recv_from().has_value());
  EXPECT_FALSE(bad.wait_readable(0));
  EXPECT_FALSE(bad.connect_peer("127.0.0.1", 1));
  EXPECT_EQ(bad.last_error(), err);  // untouched by the no-ops above
  EXPECT_EQ(bad.datagrams_sent(), 0u);
}

}  // namespace
}  // namespace rtct::net
