// X-MESH — scaling the journal-version multi-player extension: how does
// lockstep degrade as the mesh grows?
//
// Theory: a frame executes when the SLOWEST of N-1 peers' inputs arrives,
// so the effective stall distribution is the max over more draws — larger
// meshes feel the latency tail earlier, and bandwidth grows with N-1
// unicast feeds per site. This bench sweeps N x RTT and reports frame
// time, smoothness, worst synchrony and per-site message volume.
#include <cstdio>
#include <cstdlib>

#include "src/testbed/mesh_experiment.h"

int main(int argc, char** argv) {
  using namespace rtct;
  using namespace rtct::testbed;

  const int frames = argc > 1 ? std::atoi(argv[1]) : 600;

  std::printf("=== X-MESH: N-site lockstep scaling (%d frames, quadtron) ===\n\n", frames);
  std::printf("%3s %8s | %11s %11s | %10s | %10s | %s\n", "N", "RTT(ms)", "avgFT(ms)",
              "devFT(ms)", "sync(ms)", "msgs/site", "consistent");
  std::printf("-------------+-------------------------+------------+------------+---------"
              "--\n");

  for (int n : {2, 4, 8}) {
    for (int rtt : {20, 60, 100, 140, 180}) {
      MeshExperimentConfig cfg;
      cfg.num_sites = n;
      cfg.frames = frames;
      cfg.net = net::NetemConfig::for_rtt(milliseconds(rtt));
      cfg.net.jitter = milliseconds(2);  // a little tail to amplify max-of-N
      const auto r = run_mesh_experiment(cfg);

      double worst_ft = 0, worst_dev = 0;
      std::uint64_t msgs = 0;
      for (int s = 0; s < n; ++s) {
        worst_ft = std::max(worst_ft, r.avg_frame_time_ms(s));
        worst_dev = std::max(worst_dev, r.frame_time_deviation_ms(s));
        msgs = std::max(msgs, r.sites[static_cast<std::size_t>(s)].sync_stats.messages_made);
      }
      std::printf("%3d %8d | %11.3f %11.3f | %10.3f | %10llu | %s\n", n, rtt, worst_ft,
                  worst_dev, r.worst_synchrony_ms(), static_cast<unsigned long long>(msgs),
                  r.converged() ? "yes" : "NO");
    }
    std::printf("-------------+-------------------------+------------+------------+-------"
                "----\n");
  }

  std::printf("\nExpected shape: all mesh sizes hold 60 FPS well below the two-site\n"
              "threshold; as RTT approaches it, larger meshes degrade first (stall =\n"
              "max over N-1 arrival tails) and message volume scales with N-1.\n");
  return 0;
}
