// SPEC-SCALE — spectator fan-out scaling: the SpectatorBroadcastHub
// against the one-SpectatorHost-per-observer baseline it replaced.
//
// All observers sit at identical cursors (the common case: a healthy
// broadcast where everyone acks promptly), so the hub should pay encode
// work ONCE per flush regardless of observer count — bytes_encoded must
// grow sub-linearly (in practice: stay flat) in N while bytes_sent grows
// linearly. The legacy baseline re-encodes per observer, so its encoded
// bytes grow linearly — that difference is the whole point of the hub.
//
// Usage: spectator_scaling [frames] [--json PATH]
// Emits "rtct.bench.v1" JSON (validated in CI by rtct_trace --check) and
// self-checks the sub-linearity acceptance criterion.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/core/spectate.h"
#include "src/core/wire.h"
#include "src/cores/registry.h"

namespace {

using namespace rtct;

constexpr int kWarmFrames = 60;   ///< frames executed before the snapshot
constexpr int kFlushEvery = 3;    ///< frames per serve/ack round (~50 ms)

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScalePoint {
  int observers = 0;
  double hub_serve_ms = 0;        ///< hub-side work: on_frame + serve + acks
  std::uint64_t hub_bytes_encoded = 0;
  std::uint64_t hub_bytes_sent = 0;
  std::uint64_t hub_feed_encodes = 0;
  std::uint64_t hub_snapshot_encodes = 0;
  double legacy_serve_ms = 0;     ///< same drill through N SpectatorHosts
  std::uint64_t legacy_bytes_encoded = 0;
};

InputWord input_for(int f) { return static_cast<InputWord>((f * 2654435761u) & 0xFFFF); }

/// Shared drill: warm the machine, join everyone, serve the snapshot, then
/// `frames` live frames with a serve + cumulative-ack round every
/// kFlushEvery frames. Both implementations see the identical schedule.
ScalePoint run_point(int n, int frames) {
  ScalePoint p;
  p.observers = n;
  std::vector<std::uint8_t> scratch;

  // --- hub ---
  {
    auto m = cores::make_game("duel");
    core::SpectatorBroadcastHub hub(m->content_id(), core::SyncConfig{});
    std::vector<core::SpectatorBroadcastHub::ObserverId> ids;
    ids.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) ids.push_back(hub.add_observer());
    for (int f = 0; f < kWarmFrames; ++f) m->step_frame(input_for(f));

    std::int64_t total = 0;
    Time now = 0;
    std::int64_t t0 = now_ns();
    for (auto id : ids) {
      hub.ingest(id, core::Message{core::JoinRequestMsg{m->content_id()}});
    }
    if (hub.wants_snapshot() && m->frame() > 0) {
      m->save_state_into(scratch);
      hub.provide_snapshot(m->frame() - 1, scratch);
    }
    for (auto id : ids) (void)hub.make_message(id, now);
    for (auto id : ids) {
      hub.ingest(id, core::Message{core::FeedAckMsg{m->frame() - 1}});
    }
    total += now_ns() - t0;

    for (int f = 0; f < frames; ++f) {
      m->step_frame(input_for(kWarmFrames + f));
      const FrameNo fr = m->frame() - 1;
      t0 = now_ns();
      hub.on_frame(fr, input_for(kWarmFrames + f));
      if ((f + 1) % kFlushEvery == 0 || f + 1 == frames) {
        now += 1'000'000;
        for (auto id : ids) (void)hub.make_message(id, now);
        for (auto id : ids) hub.ingest(id, core::Message{core::FeedAckMsg{fr}});
      }
      total += now_ns() - t0;
    }
    p.hub_serve_ms = static_cast<double>(total) / 1e6;
    const core::SpectatorHubStats& s = hub.stats();
    p.hub_bytes_encoded = s.bytes_encoded;
    p.hub_bytes_sent = s.bytes_sent;
    p.hub_feed_encodes = s.feed_encodes;
    p.hub_snapshot_encodes = s.snapshot_encodes;
  }

  // --- legacy: one SpectatorHost per observer ---
  {
    auto m = cores::make_game("duel");
    std::vector<core::SpectatorHost> hosts;
    hosts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      hosts.emplace_back(m->content_id(), core::SyncConfig{});
    }
    for (int f = 0; f < kWarmFrames; ++f) m->step_frame(input_for(f));

    std::int64_t total = 0;
    std::uint64_t bytes = 0;
    Time now = 0;
    std::vector<std::uint8_t> wire;
    std::int64_t t0 = now_ns();
    for (auto& h : hosts) {
      h.ingest(core::Message{core::JoinRequestMsg{m->content_id()}});
      if (h.wants_snapshot() && m->frame() > 0) {
        m->save_state_into(scratch);
        h.provide_snapshot(m->frame() - 1, scratch);
      }
      if (auto msg = h.make_message(now)) {
        core::encode_message_into(*msg, wire);
        bytes += wire.size();
      }
      h.ingest(core::Message{core::FeedAckMsg{m->frame() - 1}});
    }
    total += now_ns() - t0;

    for (int f = 0; f < frames; ++f) {
      m->step_frame(input_for(kWarmFrames + f));
      const FrameNo fr = m->frame() - 1;
      t0 = now_ns();
      for (auto& h : hosts) h.on_frame(fr, input_for(kWarmFrames + f));
      if ((f + 1) % kFlushEvery == 0 || f + 1 == frames) {
        now += 1'000'000;
        for (auto& h : hosts) {
          if (auto msg = h.make_message(now)) {
            core::encode_message_into(*msg, wire);
            bytes += wire.size();
          }
          h.ingest(core::Message{core::FeedAckMsg{fr}});
        }
      }
      total += now_ns() - t0;
    }
    p.legacy_serve_ms = static_cast<double>(total) / 1e6;
    p.legacy_bytes_encoded = bytes;
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  int frames = 600;  // CI-sized
  std::string json_path = "BENCH_spectator_scaling.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      frames = std::atoi(argv[i]);
    }
  }

  const int counts[] = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  std::vector<ScalePoint> points;
  std::printf("=== SPEC-SCALE: broadcast hub vs per-observer hosts (%d frames) ===\n\n",
              frames);
  std::printf("%9s %14s %16s %14s %16s %18s\n", "observers", "hub serve ms",
              "hub enc bytes", "hub sent bytes", "legacy serve ms", "legacy enc bytes");
  for (int n : counts) {
    points.push_back(run_point(n, frames));
    const ScalePoint& p = points.back();
    std::printf("%9d %14.2f %16llu %14llu %16.2f %18llu\n", p.observers, p.hub_serve_ms,
                static_cast<unsigned long long>(p.hub_bytes_encoded),
                static_cast<unsigned long long>(p.hub_bytes_sent), p.legacy_serve_ms,
                static_cast<unsigned long long>(p.legacy_bytes_encoded));
  }

  JsonWriter w;
  w.begin_object();
  w.key("schema").value("rtct.bench.v1");
  w.key("name").value("spectator_scaling");
  w.key("meta").begin_object();
  w.key("game").value("duel");
  w.key("frames").value(std::to_string(frames));
  w.key("flush_every_frames").value(std::to_string(kFlushEvery));
  w.end_object();
  w.key("series").begin_object();
  auto series = [&w, &points](const char* key, auto proj) {
    w.key(key).begin_array();
    for (const auto& p : points) w.value(proj(p));
    w.end_array();
  };
  series("observers", [](const ScalePoint& p) {
    return static_cast<std::uint64_t>(p.observers);
  });
  series("hub_serve_ms", [](const ScalePoint& p) { return p.hub_serve_ms; });
  series("hub_bytes_encoded", [](const ScalePoint& p) { return p.hub_bytes_encoded; });
  series("hub_bytes_sent", [](const ScalePoint& p) { return p.hub_bytes_sent; });
  series("hub_feed_encodes", [](const ScalePoint& p) { return p.hub_feed_encodes; });
  series("hub_snapshot_encodes",
         [](const ScalePoint& p) { return p.hub_snapshot_encodes; });
  series("legacy_serve_ms", [](const ScalePoint& p) { return p.legacy_serve_ms; });
  series("legacy_bytes_encoded",
         [](const ScalePoint& p) { return p.legacy_bytes_encoded; });
  w.end_object();
  w.end_object();

  std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::printf("FAILED to write %s\n", json_path.c_str());
    return 1;
  }
  out << w.take() << '\n';
  std::printf("\nwrote %s\n", json_path.c_str());

  // Acceptance gate: with identical cursors the hub's encode work must be
  // sub-linear in observer count (flat, in practice), while each payload
  // still reaches every observer.
  const ScalePoint& one = points.front();
  const ScalePoint& big = points.back();
  const double enc_ratio =
      static_cast<double>(big.hub_bytes_encoded) / static_cast<double>(one.hub_bytes_encoded);
  const double sent_ratio =
      static_cast<double>(big.hub_bytes_sent) / static_cast<double>(one.hub_bytes_sent);
  std::printf("encoded-bytes growth 1 -> %d observers: %.2fx (sent grows %.0fx)\n",
              big.observers, enc_ratio, sent_ratio);
  const bool sub_linear = enc_ratio < static_cast<double>(big.observers) / 4.0;
  const bool fan_out_real = big.hub_bytes_sent > one.hub_bytes_sent * 32;
  if (!sub_linear) std::printf("FAIL: hub encode work scales with observer count\n");
  if (!fan_out_real) std::printf("FAIL: fan-out did not actually serve the observers\n");
  return (sub_linear && fan_out_real) ? 0 : 1;
}
