// RTO-LOSS — transport-policy ablation under loss: the paper's go-back-N
// (every unacked input re-sent in every 20 ms flush) against the adaptive
// transport (negotiated lag + RTO-timed window resends + a K=2-flush
// redundancy tail). At RTT 100 ms the negotiated lag lands on the paper's
// BufFrame = 6, so the comparison isolates the resend policy.
//
// Two regimes per loss rate:
//   * an unconstrained link, where go-back-N's redundancy is nearly free
//     and the two policies should mostly tie on smoothness;
//   * a 64 kbps link, where go-back-N's bandwidth amplification queues
//     behind the serializer and turns directly into frame-time jitter —
//     the regime the adaptive transport exists for.
//
// Logical consistency must hold in every cell (exit code enforces it).
#include <cstdio>
#include <cstdlib>

#include "src/testbed/experiment.h"

namespace {

struct Cell {
  double dev_ms = 0;      ///< worst-site frame-time deviation
  double sync_ms = 0;     ///< inter-site synchrony
  double kbytes = 0;      ///< sync bytes offered to both links
  unsigned long long retransmits = 0;
  unsigned long long rto_fires = 0;
  bool consistent = false;
};

Cell run_cell(int frames, int rtt_ms, double loss, bool adaptive, long rate_bps) {
  using namespace rtct;
  using namespace rtct::testbed;
  ExperimentConfig cfg;
  cfg.frames = frames;
  cfg.set_rtt(milliseconds(rtt_ms));
  for (auto* net : {&cfg.net_a_to_b, &cfg.net_b_to_a}) {
    net->loss = loss;
    net->rate_bps = rate_bps;
  }
  if (adaptive) {
    cfg.sync.adaptive_lag = true;
    cfg.sync.adaptive_resend = true;
    cfg.sync.redundant_inputs = 2;
  }
  const auto r = run_experiment(cfg);
  Cell c;
  c.dev_ms = std::max(r.frame_time_deviation_ms(0), r.frame_time_deviation_ms(1));
  c.sync_ms = r.synchrony_ms();
  c.kbytes = static_cast<double>(r.site[0].tx_stats.bytes_offered +
                                 r.site[1].tx_stats.bytes_offered) /
             1024.0;
  c.retransmits = r.site[0].sync_stats.inputs_retransmitted +
                  r.site[1].sync_stats.inputs_retransmitted;
  c.rto_fires = r.site[0].sync_stats.rto_fires + r.site[1].sync_stats.rto_fires;
  c.consistent = r.converged();
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 900;
  const int rtt_ms = argc > 2 ? std::atoi(argv[2]) : 100;

  std::printf("=== RTO-LOSS: go-back-N vs adaptive transport, RTT %d ms (%d frames) ===\n\n",
              rtt_ms, frames);

  bool all_consistent = true;
  for (long rate : {0L, 64000L}) {
    if (rate == 0) {
      std::printf("-- unconstrained link --\n");
    } else {
      std::printf("\n-- %ld kbps link --\n", rate / 1000);
    }
    std::printf("%7s | %-26s | %-26s\n", "", "paper go-back-N", "adaptive RTO + K=2 tail");
    std::printf("%7s | %8s %9s %7s | %8s %9s %7s %5s\n", "loss%", "dev(ms)", "sync(ms)",
                "kB", "dev(ms)", "sync(ms)", "kB", "RTOs");
    std::printf("--------+----------------------------+-------------------------------\n");
    for (double loss_pct : {0.0, 1.0, 2.0, 5.0, 10.0}) {
      const Cell paper = run_cell(frames, rtt_ms, loss_pct / 100.0, false, rate);
      const Cell adapt = run_cell(frames, rtt_ms, loss_pct / 100.0, true, rate);
      all_consistent = all_consistent && paper.consistent && adapt.consistent;
      std::printf("%7.1f | %8.3f %9.3f %7.0f | %8.3f %9.3f %7.0f %5llu%s\n", loss_pct,
                  paper.dev_ms, paper.sync_ms, paper.kbytes, adapt.dev_ms, adapt.sync_ms,
                  adapt.kbytes, adapt.rto_fires,
                  paper.consistent && adapt.consistent ? "" : "  INCONSISTENT");
    }
  }

  std::printf("\nlogical consistency preserved in every cell: %s\n",
              all_consistent ? "yes" : "NO");
  return all_consistent ? 0 : 1;
}
