// FIG1 — reproduces Figure 1, "Frame rates and smoothness" (§4.1.1).
//
// Paper protocol: two sites play Street Fighter 2 through a Netem box;
// RTT swept 0→200 ms (10 ms steps) and 200→400 ms (50 ms steps); each
// point records the begin time of 3 600 frames per site, then reports the
// average frame time and the average absolute deviation of frame times.
//
// Paper findings this bench should reproduce in shape:
//   * avg frame time ≈ 16.7 ms (60 FPS) while RTT is below the threshold;
//   * deviation ≈ 0 at low RTT, < 5 ms a bit below the threshold, jumping
//     ≥ 11 ms at it;
//   * an inflection just above the threshold (deviation higher than both
//     neighbours) before the game settles at a slower but steadier pace
//     (paper: ~20 ms per frame at RTT 160).
// The absolute threshold depends on the modelled overheads (paper: 140 ms
// with 20 ms batching + 5 ms thread handoff on Windows XP; see
// bench/budget_threshold for the arithmetic).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/testbed/sweep.h"

int main(int argc, char** argv) {
  using namespace rtct;
  using namespace rtct::testbed;

  ExperimentConfig base;
  base.game = "duel";
  std::string json_path = "BENCH_fig1_frame_rates.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      base.frames = std::atoi(argv[i]);
    }
  }

  std::printf("=== FIG1: frame rates and smoothness vs RTT (%d frames/point) ===\n\n",
              base.frames);
  std::printf("%8s | %11s %11s | %11s %11s | %s\n", "RTT(ms)", "avgFT0(ms)", "avgFT1(ms)",
              "devFT0(ms)", "devFT1(ms)", "consistent");
  std::printf("---------+-------------------------+-------------------------+-----------\n");

  const auto points = sweep_rtt(base, paper_rtt_sweep());
  for (const auto& p : points) {
    std::printf("%8.0f | %11.3f %11.3f | %11.3f %11.3f | %s\n", to_ms(p.rtt),
                p.result.avg_frame_time_ms(0), p.result.avg_frame_time_ms(1),
                p.result.frame_time_deviation_ms(0), p.result.frame_time_deviation_ms(1),
                p.result.converged() ? "yes" : "NO");
  }

  const Dur threshold = find_threshold_rtt(points, base.sync.cfps);
  std::printf("\nfull-speed threshold RTT: %.0f ms (paper: ~140 ms with its overheads)\n",
              to_ms(threshold));

  // Inflection detection: a point just above the threshold whose deviation
  // exceeds both neighbours' (the paper singles out 150 ms).
  for (std::size_t i = 1; i + 1 < points.size(); ++i) {
    if (points[i].rtt <= threshold) continue;
    const auto dev = [&](std::size_t k) {
      return std::max(points[k].result.frame_time_deviation_ms(0),
                      points[k].result.frame_time_deviation_ms(1));
    };
    if (dev(i) > dev(i - 1) && dev(i) > dev(i + 1)) {
      std::printf("inflection point at RTT %.0f ms: deviation %.3f ms exceeds neighbours "
                  "(%.3f / %.3f) — the paper's '150 ms is an inflection point'\n",
                  to_ms(points[i].rtt), dev(i), dev(i - 1), dev(i + 1));
      break;
    }
  }

  bool all_consistent = true;
  for (const auto& p : points) all_consistent = all_consistent && p.result.converged();
  std::printf("logical consistency at every RTT: %s\n", all_consistent ? "yes" : "NO");

  // The same sweep under the rollback consistency mode: the frame clock is
  // decoupled from the network, so there is no threshold RTT — avg frame
  // time and deviation should stay flat where lockstep falls off a cliff.
  std::printf("\n--- rollback mode (input delay fixed, speculation absorbs the RTT) ---\n");
  std::printf("%8s | %11s %11s | %11s %11s | %s\n", "RTT(ms)", "avgFT0(ms)", "avgFT1(ms)",
              "devFT0(ms)", "devFT1(ms)", "consistent");
  ExperimentConfig rb_base = base;
  rb_base.sync.rollback = true;
  const auto rb_points = sweep_rtt(rb_base, paper_rtt_sweep());
  for (const auto& p : rb_points) {
    std::printf("%8.0f | %11.3f %11.3f | %11.3f %11.3f | %s\n", to_ms(p.rtt),
                p.result.avg_frame_time_ms(0), p.result.avg_frame_time_ms(1),
                p.result.frame_time_deviation_ms(0), p.result.frame_time_deviation_ms(1),
                p.result.converged() ? "yes" : "NO");
    all_consistent = all_consistent && p.result.converged();
  }
  const Dur rb_threshold = find_threshold_rtt(rb_points, rb_base.sync.cfps);
  std::printf("rollback full-speed threshold RTT: %.0f ms (expected: the whole sweep)\n",
              to_ms(rb_threshold));

  if (!json_path.empty()) {
    const std::map<std::string, std::string> meta = {
        {"game", base.game}, {"frames", std::to_string(base.frames)}};
    if (write_bench_json(json_path, "fig1_frame_rates", points, base.sync.cfps, meta)) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::printf("FAILED to write %s\n", json_path.c_str());
      return 1;
    }
    std::string rb_path = json_path;
    const auto dot = rb_path.rfind(".json");
    rb_path.insert(dot == std::string::npos ? rb_path.size() : dot, "_rollback");
    std::map<std::string, std::string> rb_meta = meta;
    rb_meta["mode"] = "rollback";
    if (write_bench_json(rb_path, "fig1_frame_rates_rollback", rb_points,
                         rb_base.sync.cfps, rb_meta)) {
      std::printf("wrote %s\n", rb_path.c_str());
    } else {
      std::printf("FAILED to write %s\n", rb_path.c_str());
      return 1;
    }
  }
  return all_consistent ? 0 : 1;
}
