// X-NARROW — lockstep on period-appropriate narrow pipes.
//
// The paper's §5 bandwidth claim ("the amount of data is not excessive")
// gets its stress test: links from 2009-era broadband all the way down to
// a 9600-baud modem, with a bounded device queue so an overloaded link
// *drops* instead of buffering forever (no bufferbloat mercy). The sync
// protocol's ~2.6 KB/s demand should sail on anything >= 64 kbps and
// degrade gracefully, never inconsistently, below that.
#include <cstdio>
#include <cstdlib>

#include "src/testbed/experiment.h"

int main(int argc, char** argv) {
  using namespace rtct;
  using namespace rtct::testbed;

  const int frames = argc > 1 ? std::atoi(argv[1]) : 900;

  std::printf("=== X-NARROW: link rate sweep (RTT 40 ms base, queue limit 16, %d frames) "
              "===\n\n",
              frames);
  std::printf("%10s | %11s %11s | %10s | %11s | %10s | %s\n", "rate", "avgFT(ms)",
              "devFT(ms)", "sync(ms)", "queue-drop", "outcome", "diverged");
  std::printf("-----------+-------------------------+------------+-------------+---------"
              "---+---------\n");

  struct Rate {
    const char* label;
    std::int64_t bps;
  };
  const Rate rates[] = {{"1 Mbps", 1000000}, {"256 kbps", 256000}, {"64 kbps", 64000},
                        {"32 kbps", 32000},  {"16 kbps", 16000},   {"9600 bps", 9600}};

  for (const auto& rate : rates) {
    ExperimentConfig cfg;
    cfg.frames = frames;
    cfg.set_rtt(milliseconds(40));
    for (auto* dir : {&cfg.net_a_to_b, &cfg.net_b_to_a}) {
      dir->rate_bps = rate.bps;
      dir->queue_limit = 16;
    }
    const auto r = run_experiment(cfg);
    const bool frozen = r.site[0].aborted || r.site[1].aborted;
    std::printf("%10s | %11.3f %11.3f | %10.3f | %11llu | %10s | %s\n", rate.label,
                std::max(r.avg_frame_time_ms(0), r.avg_frame_time_ms(1)),
                std::max(r.frame_time_deviation_ms(0), r.frame_time_deviation_ms(1)),
                r.synchrony_ms(),
                static_cast<unsigned long long>(r.site[0].tx_stats.dropped_queue +
                                                r.site[1].tx_stats.dropped_queue),
                frozen ? "FROZE" : "completed", r.first_divergence() == -1 ? "no" : "YES");
  }

  std::printf("\nExpected shape: full speed and zero queue drops down to ~32 kbps\n"
              "(the protocol needs ~2.6 KB/s plus go-back-N redundancy). Below that the\n"
              "link cannot carry even the input stream: the session eventually FREEZES\n"
              "(the paper's §3.1 failure semantics — 'it does not make more sense to\n"
              "allow the player to proceed alone') — but the executed prefixes remain\n"
              "bit-identical: slow or stuck, never wrong.\n");
  return 0;
}
