// T-BUDGET — verifies §4.2's latency-budget arithmetic.
//
// The paper explains its 140 ms threshold as
//     one-way budget = local lag (100)
//                    - inter-site sync deviation (~15)
//                    - send-buffer batching (10 avg / 20 worst)
//                    - producer/consumer thread handoff (~5)
//                    ≈ 70 ms  =>  threshold RTT ≈ 140 ms.
//
// If that arithmetic is the real mechanism (and not a coincidence), the
// measured threshold must *move* when the overheads change. This bench
// sweeps the send flush period and the dispatch delay and measures the
// "deviation knee" — the last RTT whose frame-time deviation stays under
// 2 ms, which is how the paper itself identifies its threshold ("the
// average deviation suddenly jumps"). Prediction mirrors the paper's §4.2
// subtraction: average batching delay (flush/2) + steady inter-site sync
// deviation (≈ flush/2 in this model) + dispatch:
//     predicted RTT = 2 * (local_lag - flush - dispatch).
//
// With the paper's own overhead parameters (flush 20 ms, dispatch 5 ms)
// this model measures a ~150 ms threshold — the paper reports ~140 ms
// (their extra -15 ms sync-deviation term was measured on real hardware
// with noisier clocks).
#include <cstdio>
#include <cstdlib>

#include "src/testbed/experiment.h"

int main(int argc, char** argv) {
  using namespace rtct;
  using namespace rtct::testbed;

  const int frames = argc > 1 ? std::atoi(argv[1]) : 900;

  struct Case {
    int flush_ms;
    int dispatch_ms;
  };
  const Case cases[] = {{20, 5}, {20, 0}, {10, 5}, {10, 0}, {40, 5}, {5, 0}};

  std::printf("=== T-BUDGET: threshold RTT vs modelled overheads (%d frames/point) ===\n\n",
              frames);
  std::printf("%9s %12s | %13s %13s | %s\n", "flush(ms)", "dispatch(ms)", "predicted(ms)",
              "measured(ms)", "|diff| <= 25ms");
  std::printf("-----------------------+-----------------------------+---------------\n");

  bool all_close = true;
  double paper_params_threshold = -1;
  for (const auto& c : cases) {
    ExperimentConfig base;
    base.frames = frames;
    base.sync.send_flush_period = milliseconds(c.flush_ms);
    base.sync.send_dispatch_delay = milliseconds(c.dispatch_ms);

    const double local_lag_ms = to_ms(base.sync.local_lag());
    const double predicted = 2.0 * (local_lag_ms - c.flush_ms - c.dispatch_ms);

    // Measure the deviation knee on a 10 ms grid.
    int knee = -1;
    for (int ms = 40; ms <= 260; ms += 10) {
      ExperimentConfig cfg = base;
      cfg.set_rtt(milliseconds(ms));
      const auto r = run_experiment(cfg);
      const double dev =
          std::max(r.frame_time_deviation_ms(0), r.frame_time_deviation_ms(1));
      if (dev >= 2.0) break;
      knee = ms;
    }
    if (c.flush_ms == 20 && c.dispatch_ms == 5) paper_params_threshold = knee;

    const bool close = std::abs(knee - predicted) <= 25.0;
    all_close = all_close && close;
    std::printf("%9d %12d | %13.0f %13d | %s\n", c.flush_ms, c.dispatch_ms, predicted, knee,
                close ? "yes" : "NO");
  }

  std::printf("\nthreshold tracks the budget arithmetic: %s\n", all_close ? "yes" : "NO");
  std::printf("measured threshold with the paper's overheads (flush 20 ms, dispatch 5 ms): "
              "%.0f ms — paper reports ~140 ms (see EXPERIMENTS.md)\n",
              paper_params_threshold);
  return all_close ? 0 : 1;
}
