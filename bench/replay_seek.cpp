// REPLAY-SEEK — RTCTRPL2 random-access cost: seek latency and re-simulated
// frames versus recording length, at keyframe intervals 150 / 600 / 1200,
// against the keyframeless v1 baseline (every seek re-simulates from
// genesis).
//
// The embedded keyframes bound a seek's re-simulation to at most one
// interval, so mean resim should sit near interval/2 regardless of where
// in the recording the target lands — while the v1 baseline's cost grows
// linearly with the target frame. That gap is the whole point of the v2
// container.
//
// Usage: replay_seek [frames] [--seeks K] [--json PATH]
// Emits "rtct.bench.v1" JSON (validated in CI by rtct_trace --check) and
// self-checks the acceptance criterion: mean resim <= interval, and every
// seek digest equals the linear-replay digest at that frame.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/random.h"
#include "src/core/replay.h"
#include "src/emu/game.h"
#include "src/cores/registry.h"

namespace {

using namespace rtct;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SeekPoint {
  int interval = 0;
  int frames = 0;
  std::size_t keyframes = 0;
  std::size_t container_bytes = 0;
  double seek_ns_mean = 0;      ///< keyframed seek, mean over K targets
  double resim_frames_mean = 0; ///< frames re-simulated per keyframed seek
  double linear_ns_mean = 0;    ///< v1 baseline: same targets, genesis resim
  double linear_resim_mean = 0;
  bool digests_agree = true;    ///< every seek matched the linear digest
};

/// Records `frames` of a deterministic session (inputs from `rng`) into a
/// keyframed v2 replay and, in parallel, captures the per-frame digests
/// that every seek must reproduce.
core::Replay record_session(const char* game, int frames, int interval, Rng rng,
                            std::vector<std::uint64_t>* linear_digests) {
  auto m = cores::make_game(game);
  core::SyncConfig cfg;
  cfg.digest_v2 = true;
  cfg.replay_keyframe_interval = interval;
  core::Replay rec(m->content_id(), cfg, m->content_name());
  linear_digests->clear();
  linear_digests->reserve(static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    const auto input = static_cast<InputWord>(rng.next_u64());
    m->step_frame(input);
    rec.record(input);
    linear_digests->push_back(m->state_digest(2));
    if (rec.keyframe_due()) rec.record_keyframe(*m);
  }
  return rec;
}

SeekPoint run_point(const char* game, int frames, int interval, int seeks) {
  SeekPoint p;
  p.interval = interval;
  p.frames = frames;

  std::vector<std::uint64_t> linear;
  const core::Replay rec = record_session(game, frames, interval, Rng(0x5EED), &linear);
  p.keyframes = rec.keyframes().size();
  std::vector<std::uint8_t> wire;
  rec.serialize_into(wire);
  p.container_bytes = wire.size();

  // The v1 baseline: same inputs, no keyframes — every seek restarts at
  // genesis.
  const core::Replay v1 = [&] {
    core::SyncConfig cfg;
    cfg.digest_v2 = true;
    cfg.replay_keyframe_interval = 0;
    core::Replay r(rec.content_id(), cfg);
    for (FrameNo f = 0; f < rec.frames(); ++f) {
      r.record(rec.inputs()[static_cast<std::size_t>(f)]);
    }
    return r;
  }();

  auto m = cores::make_game(game);
  Rng targets(0x5EEC + static_cast<std::uint64_t>(interval));
  std::int64_t seek_total = 0;
  std::int64_t linear_total = 0;
  std::int64_t resim_total = 0;
  std::int64_t linear_resim_total = 0;
  for (int i = 0; i < seeks; ++i) {
    const auto target = static_cast<FrameNo>(targets.uniform(0, frames - 1));
    core::Replay::SeekStats st;
    std::int64_t t0 = now_ns();
    const auto digest = rec.seek(*m, target, /*digest_version=*/2, &st);
    seek_total += now_ns() - t0;
    resim_total += st.resimulated;

    core::Replay::SeekStats lst;
    t0 = now_ns();
    const auto linear_digest = v1.seek(*m, target, /*digest_version=*/2, &lst);
    linear_total += now_ns() - t0;
    linear_resim_total += lst.resimulated;

    if (!digest || !linear_digest || *digest != *linear_digest ||
        *digest != linear[static_cast<std::size_t>(target)]) {
      p.digests_agree = false;
    }
  }
  p.seek_ns_mean = static_cast<double>(seek_total) / seeks;
  p.resim_frames_mean = static_cast<double>(resim_total) / seeks;
  p.linear_ns_mean = static_cast<double>(linear_total) / seeks;
  p.linear_resim_mean = static_cast<double>(linear_resim_total) / seeks;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  int frames = 2400;  // CI-sized; 2 keyframes even at the widest interval
  int seeks = 32;
  std::string json_path = "BENCH_replay_seek.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seeks") == 0 && i + 1 < argc) {
      seeks = std::atoi(argv[++i]);
    } else {
      frames = std::atoi(argv[i]);
    }
  }
  const char* game = "duel";
  const int intervals[] = {150, 600, 1200};

  std::printf("=== REPLAY-SEEK: keyframed seek vs genesis re-simulation (%s, %d frames, %d seeks) ===\n\n",
              game, frames, seeks);
  std::printf("%9s %7s %10s %13s %12s %13s %13s\n", "interval", "kfs", "bytes",
              "seek us", "resim/seek", "linear us", "linear resim");
  std::vector<SeekPoint> points;
  bool ok = true;
  for (int interval : intervals) {
    points.push_back(run_point(game, frames, interval, seeks));
    const SeekPoint& p = points.back();
    std::printf("%9d %7zu %10zu %13.1f %12.1f %13.1f %13.1f\n", p.interval, p.keyframes,
                p.container_bytes, p.seek_ns_mean / 1e3, p.resim_frames_mean,
                p.linear_ns_mean / 1e3, p.linear_resim_mean);
    if (!p.digests_agree) {
      std::printf("FAIL: a seek digest disagreed with the linear replay at interval %d\n",
                  p.interval);
      ok = false;
    }
    if (p.resim_frames_mean > static_cast<double>(p.interval)) {
      std::printf("FAIL: mean resim %.1f exceeds the keyframe interval %d\n",
                  p.resim_frames_mean, p.interval);
      ok = false;
    }
  }

  JsonWriter w;
  w.begin_object();
  w.key("schema").value("rtct.bench.v1");
  w.key("name").value("replay_seek");
  w.key("meta").begin_object();
  w.key("game").value(game);
  w.key("frames").value(std::to_string(frames));
  w.key("seeks").value(std::to_string(seeks));
  w.end_object();
  w.key("series").begin_object();
  auto series = [&w, &points](const char* key, auto proj) {
    w.key(key).begin_array();
    for (const auto& p : points) w.value(proj(p));
    w.end_array();
  };
  series("interval", [](const SeekPoint& p) { return static_cast<std::uint64_t>(p.interval); });
  series("keyframes", [](const SeekPoint& p) { return static_cast<std::uint64_t>(p.keyframes); });
  series("container_bytes",
         [](const SeekPoint& p) { return static_cast<std::uint64_t>(p.container_bytes); });
  series("seek_ns_mean", [](const SeekPoint& p) { return p.seek_ns_mean; });
  series("resim_frames_mean", [](const SeekPoint& p) { return p.resim_frames_mean; });
  series("linear_ns_mean", [](const SeekPoint& p) { return p.linear_ns_mean; });
  series("linear_resim_mean", [](const SeekPoint& p) { return p.linear_resim_mean; });
  w.end_object();
  w.end_object();

  std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::printf("FAILED to write %s\n", json_path.c_str());
    return 1;
  }
  out << w.take() << '\n';
  std::printf("\nwrote %s\n", json_path.c_str());
  if (!ok) return 1;
  std::printf("PASS: every seek reproduced the linear digest; mean resim bounded by the interval\n");
  return 0;
}
