// ADAPT-LAG — RTT sweep of the fixed paper lag (BufFrame = 6, ~100 ms of
// input latency at 60 FPS) against the v2 handshake-negotiated lag
// (BufFrame = ceil(RTT/2 / frame_period) + margin, clamped to [2, 30]).
//
// What to look for:
//   * short RTTs: the negotiated depth drops below 6 — less input latency
//     with no smoothness penalty (the fixed 6 wastes lag budget);
//   * RTT ≈ 100 ms: negotiation lands back on ~6, reproducing the paper's
//     operating point (Figure 1's threshold);
//   * long RTTs: the fixed lag stops covering the one-way delay and every
//     frame blocks in SyncInput, while the negotiated depth keeps the
//     deviation near zero at the price of more input latency.
//
// Both sites must agree on the negotiated depth and stay consistent in
// every cell (exit code enforces it).
#include <cstdio>
#include <cstdlib>

#include "src/testbed/experiment.h"

int main(int argc, char** argv) {
  using namespace rtct;
  using namespace rtct::testbed;

  const int frames = argc > 1 ? std::atoi(argv[1]) : 900;

  std::printf("=== ADAPT-LAG: fixed BufFrame=6 vs RTT-negotiated local lag (%d frames) ===\n\n",
              frames);
  std::printf("%7s | %-20s | %-26s\n", "", "fixed (paper)", "negotiated (v2 handshake)");
  std::printf("%7s | %9s %9s | %4s %9s %9s | %s\n", "RTT(ms)", "dev(ms)", "sync(ms)", "buf",
              "dev(ms)", "sync(ms)", "consistent");
  std::printf("--------+----------------------+---------------------------+-----------\n");

  bool ok = true;
  for (int rtt_ms : {10, 40, 80, 100, 140, 200, 300, 500}) {
    ExperimentConfig fixed;
    fixed.frames = frames;
    fixed.set_rtt(milliseconds(rtt_ms));
    const auto rf = run_experiment(fixed);

    ExperimentConfig adaptive = fixed;
    adaptive.sync.adaptive_lag = true;
    const auto ra = run_experiment(adaptive);

    const bool consistent = rf.converged() && ra.converged() &&
                            ra.site[0].buf_frames == ra.site[1].buf_frames;
    ok = ok && consistent;
    std::printf("%7d | %9.3f %9.3f | %4d %9.3f %9.3f | %s\n", rtt_ms,
                std::max(rf.frame_time_deviation_ms(0), rf.frame_time_deviation_ms(1)),
                rf.synchrony_ms(), ra.site[0].buf_frames,
                std::max(ra.frame_time_deviation_ms(0), ra.frame_time_deviation_ms(1)),
                ra.synchrony_ms(), consistent ? "yes" : "NO");
  }

  std::printf("\nboth sites agreed on the negotiated lag and stayed consistent: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
