// A-LAG — ablation of the fixed 100 ms local lag (§4.2's design
// discussion and §3's BufFrame parameter).
//
// Paper position: BufFrame = 6 (≈100 ms at 60 FPS) is fixed rather than
// adaptive. A smaller lag makes the system "sensitive to network
// conditions" (stalls begin at much lower RTT); a larger one buys latency
// tolerance but directly worsens the player's own input response, already
// at the edge of the 100 ms HCI guideline [Shneiderman].
//
// This bench sweeps BufFrame x RTT and reports the frame-time deviation —
// the stall onset must move right as BufFrame grows, while the "cost"
// column (the local input lag the player feels) grows with it.
#include <cstdio>
#include <cstdlib>

#include "src/testbed/experiment.h"

int main(int argc, char** argv) {
  using namespace rtct;
  using namespace rtct::testbed;

  const int frames = argc > 1 ? std::atoi(argv[1]) : 900;
  const int rtts[] = {0, 40, 80, 120, 160, 200, 240};

  std::printf("=== A-LAG: BufFrame (local lag) vs RTT — frame-time deviation (ms) "
              "(%d frames) ===\n\n",
              frames);
  std::printf("%9s %9s |", "BufFrame", "lag(ms)");
  for (int rtt : rtts) std::printf(" %8d", rtt);
  std::printf("   <- RTT (ms)\n");
  std::printf("--------------------+");
  for (std::size_t i = 0; i < sizeof(rtts) / sizeof(rtts[0]); ++i) std::printf("---------");
  std::printf("\n");

  for (int buf : {1, 2, 4, 6, 9, 12}) {
    ExperimentConfig base;
    base.frames = frames;
    base.sync.buf_frames = buf;
    std::printf("%9d %9.0f |", buf, to_ms(base.sync.local_lag()));
    for (int rtt : rtts) {
      ExperimentConfig cfg = base;
      cfg.set_rtt(milliseconds(rtt));
      const auto r = run_experiment(cfg);
      const double dev =
          std::max(r.frame_time_deviation_ms(0), r.frame_time_deviation_ms(1));
      if (r.converged()) {
        std::printf(" %8.2f", dev);
      } else {
        std::printf(" %8s", "fail");
      }
    }
    std::printf("\n");
  }

  std::printf("\nExpected shape: each row is smooth (≈0) until the RTT exhausts that row's\n"
              "local-lag budget, then deviation jumps; the knee moves right as BufFrame\n"
              "grows. The paper fixes BufFrame=6: beyond it the player's own-input lag\n"
              "exceeds the ~100 ms interactivity bound.\n");
  return 0;
}
