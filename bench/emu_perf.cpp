// T-EMU — substrate sanity: the emulator must be far cheaper than the
// 16.7 ms frame budget, or the "frame_compute_time" model parameter (and
// the whole real-time analysis) would be fiction. google-benchmark
// microbenchmarks of the VM, state hashing, snapshots and the assembler.
//
// Two modes:
//   emu_perf                        google-benchmark microbenchmarks
//   emu_perf --json PATH            hand-rolled per-scenario comparison,
//                                   written as "rtct.bench.v1" JSON (the
//                                   ctest + rtct_trace --check CI gate).
//
// The JSON mode carries the perf acceptance gates (exit code != 0 on any
// failure):
//   * sparse-frame v2 digest >= 5x faster than the full v1 rehash (the
//     incremental dirty-page digest must actually be incremental);
//   * duel fast-interpreter step >= 3x faster than the reference
//     interpreter measured in the same process (2x under sanitizers,
//     whose instrumentation compresses the gap);
//   * duel absolute step_ns at most a third of the committed pre-fast-path
//     baseline (skipped under sanitizers: absolute wall-clock there
//     measures the sanitizer, not the interpreter);
//   * the sparse scenario must not regress: its fast step stays within
//     1.5x of the reference step.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/random.h"
#include "src/cores/registry.h"
#include "src/emu/assembler.h"
#include "src/emu/cpu.h"
#include "src/emu/machine.h"
#include "src/games/roms.h"

namespace {

using namespace rtct;

#if defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

/// Committed duel step_ns from the last baseline *before* the fast
/// interpreter landed (bench/baselines/BENCH_emu_perf.json at that
/// revision). The fast path must hold at least a 3x win over it.
constexpr double kPreFastPathDuelStepNs = 182802.43;

/// Absolute step budget for the agent86 core (no reference interpreter to
/// A/B against): ~8x headroom over the measured skirmish step on the
/// baseline machine, and still <1% of the 16.7 ms frame.
constexpr double kA86StepBudgetNs = 100000.0;

void BM_StepFrame(benchmark::State& state, const char* game, bool reference) {
  auto m = games::make_machine(game, {100000, reference});
  Rng rng(1);
  for (auto _ : state) {
    m->step_frame(static_cast<InputWord>(rng.next_u64() & 0xFFFF));
    if (m->faulted()) state.SkipWithError("machine faulted");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/frame"] = static_cast<double>(m->last_frame_cycles());
}
BENCHMARK_CAPTURE(BM_StepFrame, pong, "pong", false);
BENCHMARK_CAPTURE(BM_StepFrame, duel, "duel", false);
BENCHMARK_CAPTURE(BM_StepFrame, invaders, "invaders", false);
BENCHMARK_CAPTURE(BM_StepFrame, torture, "torture", false);
// The reference byte-fetch interpreter, for A/B against the fast path.
BENCHMARK_CAPTURE(BM_StepFrame, duel_reference, "duel", true);
BENCHMARK_CAPTURE(BM_StepFrame, torture_reference, "torture", true);

// The second core, through the registry: cross-VM transparency has to be
// cheap, not just correct.
void BM_CoreStepFrame(benchmark::State& state, const char* qualified) {
  auto m = cores::make_game(qualified);
  Rng rng(1);
  for (auto _ : state) {
    m->step_frame(static_cast<InputWord>(rng.next_u64() & 0xFFFF));
    if (m->faulted()) state.SkipWithError("machine faulted");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_CoreStepFrame, a86_skirmish, "agent86:skirmish");
BENCHMARK_CAPTURE(BM_CoreStepFrame, a86_pong, "agent86:pong");
BENCHMARK_CAPTURE(BM_CoreStepFrame, a86_havoc, "agent86:havoc");

void BM_CoreStateDigestPerFrame(benchmark::State& state, const char* qualified,
                                int version) {
  auto m = cores::make_game(qualified);
  for (int i = 0; i < 60; ++i) m->step_frame(0x0404);
  for (auto _ : state) {
    m->step_frame(0x0404);
    benchmark::DoNotOptimize(m->state_digest(version));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_CoreStateDigestPerFrame, a86_skirmish_v1, "agent86:skirmish", 1);
BENCHMARK_CAPTURE(BM_CoreStateDigestPerFrame, a86_skirmish_v2, "agent86:skirmish", 2);

void BM_StateHash(benchmark::State& state) {
  auto m = games::make_machine("duel");
  for (int i = 0; i < 60; ++i) m->step_frame(0x0404);
  for (auto _ : state) benchmark::DoNotOptimize(m->state_hash());
}
BENCHMARK(BM_StateHash);

// Per-frame digest cost, v1 (full image) vs v2 (dirty pages only). The
// step_frame inside the loop is what makes this honest: v2's cost is a
// function of the pages each frame dirties, so it must be measured on a
// freshly-stepped machine, not a quiescent one.
void BM_StateDigestPerFrame(benchmark::State& state, const char* game, int version) {
  auto m = games::make_machine(game);
  for (int i = 0; i < 60; ++i) m->step_frame(0x0404);
  for (auto _ : state) {
    m->step_frame(0x0404);
    benchmark::DoNotOptimize(m->state_digest(version));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_StateDigestPerFrame, duel_v1, "duel", 1);
BENCHMARK_CAPTURE(BM_StateDigestPerFrame, duel_v2, "duel", 2);

void BM_SaveState(benchmark::State& state) {
  auto m = games::make_machine("duel");
  for (int i = 0; i < 60; ++i) m->step_frame(0x0404);
  for (auto _ : state) benchmark::DoNotOptimize(m->save_state());
}
BENCHMARK(BM_SaveState);

// The allocation-free variant: identical bytes, reused capacity.
void BM_SaveStateInto(benchmark::State& state) {
  auto m = games::make_machine("duel");
  for (int i = 0; i < 60; ++i) m->step_frame(0x0404);
  std::vector<std::uint8_t> scratch;
  for (auto _ : state) {
    m->save_state_into(scratch);
    benchmark::DoNotOptimize(scratch.data());
  }
}
BENCHMARK(BM_SaveStateInto);

void BM_LoadState(benchmark::State& state) {
  auto m = games::make_machine("duel");
  for (int i = 0; i < 60; ++i) m->step_frame(0x0404);
  const auto snap = m->save_state();
  for (auto _ : state) benchmark::DoNotOptimize(m->load_state(snap));
}
BENCHMARK(BM_LoadState);

void BM_AssemblePong(benchmark::State& state) {
  // Re-assembling the ROM source measures the toolchain, not the cache.
  const std::string source = R"asm(
.equ FB, 0xA000
.entry main
main:
    LDI r0, FB
    LDI r1, 3072
loop:
    LDI r2, 1
    STB r0, r2
    ADDI r0, 1
    SUBI r1, 1
    JNZ loop
    HALT
    JMP main
)asm";
  for (auto _ : state) {
    auto result = emu::assemble(source, "bench");
    if (!result.ok()) state.SkipWithError("assembly failed");
    benchmark::DoNotOptimize(result.rom.image.data());
  }
}
BENCHMARK(BM_AssemblePong);

// ---- hand-rolled JSON mode --------------------------------------------------

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A deliberately sparse workload: one RAM byte written per frame, so the
/// v2 digest has exactly one dirty page to rehash. This is the far end of
/// the sparseness spectrum real games sit on (duel is the other point).
std::unique_ptr<emu::IDeterministicGame> make_sparse_machine(emu::MachineConfig cfg) {
  const std::string source = R"asm(
.entry main
main:
    LDI r0, 0x8100
    LDI r1, 0
tick:
    ADDI r1, 1
    STB r0, r1
    HALT
    JMP tick
)asm";
  auto result = emu::assemble(source, "sparse");
  if (!result.ok()) return nullptr;
  return std::make_unique<emu::ArcadeMachine>(result.rom, cfg);
}

/// Produces the scenario's replica. Cores without a second interpreter
/// backend (agent86) return nullptr for the reference configuration; the
/// scenario then skips the A/B columns (0 in the JSON series).
using MachineFactory =
    std::function<std::unique_ptr<emu::IDeterministicGame>(emu::MachineConfig)>;

struct ScenarioPoint {
  std::string scenario;
  double step_ns = 0;       ///< fast interpreter (the production config)
  double ref_step_ns = 0;   ///< reference byte-fetch interpreter
  double step_speedup = 0;  ///< ref / fast, same process, same inputs
  double digest_v1_ns = 0;
  double digest_v2_ns = 0;
  double speedup = 0;  ///< digest v1 / v2
  double save_state_ns = 0;
  double save_state_into_ns = 0;
  /// Derived capacity figure: 60 Hz emulation sessions one core could in
  /// principle sustain on step cost alone (1e9 / step_ns / 60).
  double sessions_per_core = 0;
};

/// Mean ns of `digest(version)` measured across `frames` freshly-stepped
/// frames (one digest per step, like the drivers do).
double time_digest(emu::IDeterministicGame& m, int version, int frames) {
  std::int64_t total = 0;
  for (int i = 0; i < frames; ++i) {
    m.step_frame(0x0404);
    const std::int64_t t0 = now_ns();
    benchmark::DoNotOptimize(m.state_digest(version));
    total += now_ns() - t0;
  }
  return static_cast<double>(total) / frames;
}

double time_steps(emu::IDeterministicGame& m, int frames) {
  const std::int64_t t0 = now_ns();
  for (int i = 0; i < frames; ++i) m.step_frame(0x0404);
  return static_cast<double>(now_ns() - t0) / frames;
}

ScenarioPoint measure_scenario(const std::string& name, const MachineFactory& make) {
  // Eight scenarios now run per invocation (sparse + every bundled game),
  // so the per-scenario frame counts are smaller than the old two-scenario
  // version; step costs are stable well below these counts.
  constexpr int kWarm = 30;
  constexpr int kFastSteps = 1200;
  constexpr int kRefSteps = 400;  // the reference is ~5x slower per frame
  constexpr int kDigestFrames = 800;
  constexpr int kSnaps = 800;

  ScenarioPoint p;
  p.scenario = name;

  auto fast = make(emu::MachineConfig{});
  auto ref = make(emu::MachineConfig{100000, true});
  for (int i = 0; i < kWarm; ++i) {
    fast->step_frame(0x0404);
    if (ref) ref->step_frame(0x0404);
  }
  p.step_ns = time_steps(*fast, kFastSteps);
  if (ref) {
    p.ref_step_ns = time_steps(*ref, kRefSteps);
    p.step_speedup = p.ref_step_ns / p.step_ns;
  }
  p.sessions_per_core = 1e9 / p.step_ns / 60.0;

  p.digest_v1_ns = time_digest(*fast, 1, kDigestFrames);
  p.digest_v2_ns = time_digest(*fast, 2, kDigestFrames);
  p.speedup = p.digest_v1_ns / p.digest_v2_ns;

  {
    const std::int64_t t0 = now_ns();
    for (int i = 0; i < kSnaps; ++i) benchmark::DoNotOptimize(fast->save_state());
    p.save_state_ns = static_cast<double>(now_ns() - t0) / kSnaps;
  }
  {
    std::vector<std::uint8_t> scratch;
    const std::int64_t t0 = now_ns();
    for (int i = 0; i < kSnaps; ++i) {
      fast->save_state_into(scratch);
      benchmark::DoNotOptimize(scratch.data());
    }
    p.save_state_into_ns = static_cast<double>(now_ns() - t0) / kSnaps;
  }
  if (fast->faulted() || (ref && ref->faulted())) p.scenario += " [FAULTED]";
  return p;
}

struct Gate {
  std::string what;
  bool passed;
};

int run_json_mode(const std::string& path) {
  std::vector<ScenarioPoint> points;
  points.push_back(measure_scenario("sparse", make_sparse_machine));
  for (const std::string_view game : games::game_names()) {
    points.push_back(measure_scenario(
        std::string(game), [game](emu::MachineConfig cfg) {
          return games::make_machine(game, cfg);
        }));
  }
  // The agent86 core has one interpreter, so the reference configuration
  // yields no machine and the A/B columns stay 0.
  for (const char* game : {"agent86:skirmish", "agent86:pong", "agent86:havoc"}) {
    points.push_back(measure_scenario(
        game, [game](emu::MachineConfig cfg) -> std::unique_ptr<emu::IDeterministicGame> {
          if (cfg.reference_interpreter) return nullptr;
          return cores::make_game(game);
        }));
  }

  std::printf("=== EMU-PERF: interpreter, digest + snapshot costs ===\n");
  std::printf("dispatch: %s%s\n\n", emu::dispatch_backend_name(),
              kSanitized ? " (sanitized build)" : "");
  std::printf("%-10s %10s %12s %8s %12s %12s %8s %13s %10s\n", "scenario",
              "step ns", "ref step ns", "speedup", "digest v1 ns",
              "digest v2 ns", "speedup", "save_state ns", "sess/core");
  std::string scenario_csv;
  for (const auto& p : points) {
    std::printf("%-10s %10.0f %12.0f %7.1fx %12.0f %12.0f %7.1fx %13.0f %10.0f\n",
                p.scenario.c_str(), p.step_ns, p.ref_step_ns, p.step_speedup,
                p.digest_v1_ns, p.digest_v2_ns, p.speedup, p.save_state_ns,
                p.sessions_per_core);
    if (!scenario_csv.empty()) scenario_csv += ',';
    scenario_csv += p.scenario;
  }

  JsonWriter w;
  w.begin_object();
  w.key("schema").value("rtct.bench.v1");
  w.key("name").value("emu_perf");
  w.key("meta").begin_object();
  w.key("scenarios").value(scenario_csv);
  w.key("dispatch").value(emu::dispatch_backend_name());
  w.key("sanitized").value(static_cast<std::uint64_t>(kSanitized ? 1 : 0));
  w.key("digest_page_bytes").value(static_cast<std::uint64_t>(emu::kPageSize));
  w.end_object();
  w.key("series").begin_object();
  auto series = [&w, &points](const char* key, auto proj) {
    w.key(key).begin_array();
    for (const auto& p : points) w.value(proj(p));
    w.end_array();
  };
  series("scenario_index",
         [&points](const ScenarioPoint& p) {
           return static_cast<std::uint64_t>(&p - points.data());
         });
  series("step_ns", [](const ScenarioPoint& p) { return p.step_ns; });
  series("ref_step_ns", [](const ScenarioPoint& p) { return p.ref_step_ns; });
  series("step_speedup", [](const ScenarioPoint& p) { return p.step_speedup; });
  series("digest_v1_ns", [](const ScenarioPoint& p) { return p.digest_v1_ns; });
  series("digest_v2_ns", [](const ScenarioPoint& p) { return p.digest_v2_ns; });
  series("digest_speedup", [](const ScenarioPoint& p) { return p.speedup; });
  series("save_state_ns", [](const ScenarioPoint& p) { return p.save_state_ns; });
  series("save_state_into_ns",
         [](const ScenarioPoint& p) { return p.save_state_into_ns; });
  series("sessions_per_core",
         [](const ScenarioPoint& p) { return p.sessions_per_core; });
  w.end_object();
  w.end_object();

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::printf("FAILED to write %s\n", path.c_str());
    return 1;
  }
  out << w.take() << '\n';
  std::printf("\nwrote %s\n", path.c_str());

  const ScenarioPoint& sparse = points[0];
  const ScenarioPoint* duel = nullptr;
  const ScenarioPoint* a86 = nullptr;
  for (const auto& p : points) {
    if (p.scenario == "duel") duel = &p;
    if (p.scenario == "agent86:skirmish") a86 = &p;
  }
  if (duel == nullptr || a86 == nullptr) {
    std::printf("FAILED: missing duel or agent86:skirmish scenario\n");
    return 1;
  }

  const double step_ratio_floor = kSanitized ? 2.0 : 3.0;
  std::vector<Gate> gates;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "sparse digest speedup (v1/v2) %.1fx >= 5x", sparse.speedup);
  gates.push_back({buf, sparse.speedup >= 5.0});
  std::snprintf(buf, sizeof buf,
                "duel fast-vs-reference step speedup %.2fx >= %.1fx",
                duel->step_speedup, step_ratio_floor);
  gates.push_back({buf, duel->step_speedup >= step_ratio_floor});
  std::snprintf(buf, sizeof buf,
                "sparse fast step %.0f ns <= 1.5x reference %.0f ns",
                sparse.step_ns, sparse.ref_step_ns);
  gates.push_back({buf, sparse.step_ns <= sparse.ref_step_ns * 1.5});
  if (!kSanitized) {
    std::snprintf(buf, sizeof buf,
                  "duel step %.0f ns <= pre-fast-path baseline %.0f / 3",
                  duel->step_ns, kPreFastPathDuelStepNs);
    gates.push_back({buf, duel->step_ns <= kPreFastPathDuelStepNs / 3.0});
  } else {
    std::printf("gate SKIP: absolute duel step bound (sanitized build)\n");
  }
  // agent86 gates. No reference interpreter to A/B against, so the core
  // is held to (a) a genuinely incremental v2 digest and (b) an absolute
  // step budget far under the 16.7 ms frame (the substrate-sanity claim,
  // per core).
  std::snprintf(buf, sizeof buf,
                "agent86:skirmish digest speedup (v1/v2) %.1fx >= 5x",
                a86->speedup);
  gates.push_back({buf, a86->speedup >= 5.0});
  if (!kSanitized) {
    std::snprintf(buf, sizeof buf,
                  "agent86:skirmish step %.0f ns <= %.0f ns budget",
                  a86->step_ns, kA86StepBudgetNs);
    gates.push_back({buf, a86->step_ns <= kA86StepBudgetNs});
  } else {
    std::printf("gate SKIP: absolute agent86 step bound (sanitized build)\n");
  }

  int rc = 0;
  for (const auto& g : gates) {
    std::printf("gate %s: %s\n", g.passed ? "PASS" : "FAIL", g.what.c_str());
    if (!g.passed) rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return run_json_mode(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
