// T-EMU — substrate sanity: the emulator must be far cheaper than the
// 16.7 ms frame budget, or the "frame_compute_time" model parameter (and
// the whole real-time analysis) would be fiction. google-benchmark
// microbenchmarks of the VM, state hashing, snapshots and the assembler.
#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/emu/assembler.h"
#include "src/emu/machine.h"
#include "src/games/roms.h"

namespace {

using namespace rtct;

void BM_StepFrame(benchmark::State& state, const char* game) {
  auto m = games::make_machine(game);
  Rng rng(1);
  for (auto _ : state) {
    m->step_frame(static_cast<InputWord>(rng.next_u64() & 0xFFFF));
    if (m->faulted()) state.SkipWithError("machine faulted");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/frame"] = static_cast<double>(m->last_frame_cycles());
}
BENCHMARK_CAPTURE(BM_StepFrame, pong, "pong");
BENCHMARK_CAPTURE(BM_StepFrame, duel, "duel");
BENCHMARK_CAPTURE(BM_StepFrame, invaders, "invaders");
BENCHMARK_CAPTURE(BM_StepFrame, torture, "torture");

void BM_StateHash(benchmark::State& state) {
  auto m = games::make_machine("duel");
  for (int i = 0; i < 60; ++i) m->step_frame(0x0404);
  for (auto _ : state) benchmark::DoNotOptimize(m->state_hash());
}
BENCHMARK(BM_StateHash);

void BM_SaveState(benchmark::State& state) {
  auto m = games::make_machine("duel");
  for (int i = 0; i < 60; ++i) m->step_frame(0x0404);
  for (auto _ : state) benchmark::DoNotOptimize(m->save_state());
}
BENCHMARK(BM_SaveState);

void BM_LoadState(benchmark::State& state) {
  auto m = games::make_machine("duel");
  for (int i = 0; i < 60; ++i) m->step_frame(0x0404);
  const auto snap = m->save_state();
  for (auto _ : state) benchmark::DoNotOptimize(m->load_state(snap));
}
BENCHMARK(BM_LoadState);

void BM_AssemblePong(benchmark::State& state) {
  // Re-assembling the ROM source measures the toolchain, not the cache.
  const std::string source = R"asm(
.equ FB, 0xA000
.entry main
main:
    LDI r0, FB
    LDI r1, 3072
loop:
    LDI r2, 1
    STB r0, r2
    ADDI r0, 1
    SUBI r1, 1
    JNZ loop
    HALT
    JMP main
)asm";
  for (auto _ : state) {
    auto result = emu::assemble(source, "bench");
    if (!result.ok()) state.SkipWithError("assembly failed");
    benchmark::DoNotOptimize(result.rom.image.data());
  }
}
BENCHMARK(BM_AssemblePong);

}  // namespace

BENCHMARK_MAIN();
