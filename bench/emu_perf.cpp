// T-EMU — substrate sanity: the emulator must be far cheaper than the
// 16.7 ms frame budget, or the "frame_compute_time" model parameter (and
// the whole real-time analysis) would be fiction. google-benchmark
// microbenchmarks of the VM, state hashing, snapshots and the assembler.
//
// Two modes:
//   emu_perf                        google-benchmark microbenchmarks
//   emu_perf --json PATH            hand-rolled digest/snapshot comparison,
//                                   written as "rtct.bench.v1" JSON (the
//                                   ctest + rtct_trace --check CI gate).
//
// The JSON mode is also the acceptance check for the incremental dirty-page
// digest (state_digest v2): for a sparse-write frame the v2 digest must be
// at least 5x faster than the full-image v1 hash, because it rehashes only
// the pages the frame actually touched.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/random.h"
#include "src/emu/assembler.h"
#include "src/emu/machine.h"
#include "src/games/roms.h"

namespace {

using namespace rtct;

void BM_StepFrame(benchmark::State& state, const char* game) {
  auto m = games::make_machine(game);
  Rng rng(1);
  for (auto _ : state) {
    m->step_frame(static_cast<InputWord>(rng.next_u64() & 0xFFFF));
    if (m->faulted()) state.SkipWithError("machine faulted");
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cycles/frame"] = static_cast<double>(m->last_frame_cycles());
}
BENCHMARK_CAPTURE(BM_StepFrame, pong, "pong");
BENCHMARK_CAPTURE(BM_StepFrame, duel, "duel");
BENCHMARK_CAPTURE(BM_StepFrame, invaders, "invaders");
BENCHMARK_CAPTURE(BM_StepFrame, torture, "torture");

void BM_StateHash(benchmark::State& state) {
  auto m = games::make_machine("duel");
  for (int i = 0; i < 60; ++i) m->step_frame(0x0404);
  for (auto _ : state) benchmark::DoNotOptimize(m->state_hash());
}
BENCHMARK(BM_StateHash);

// Per-frame digest cost, v1 (full image) vs v2 (dirty pages only). The
// step_frame inside the loop is what makes this honest: v2's cost is a
// function of the pages each frame dirties, so it must be measured on a
// freshly-stepped machine, not a quiescent one.
void BM_StateDigestPerFrame(benchmark::State& state, const char* game, int version) {
  auto m = games::make_machine(game);
  for (int i = 0; i < 60; ++i) m->step_frame(0x0404);
  for (auto _ : state) {
    m->step_frame(0x0404);
    benchmark::DoNotOptimize(m->state_digest(version));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_StateDigestPerFrame, duel_v1, "duel", 1);
BENCHMARK_CAPTURE(BM_StateDigestPerFrame, duel_v2, "duel", 2);

void BM_SaveState(benchmark::State& state) {
  auto m = games::make_machine("duel");
  for (int i = 0; i < 60; ++i) m->step_frame(0x0404);
  for (auto _ : state) benchmark::DoNotOptimize(m->save_state());
}
BENCHMARK(BM_SaveState);

// The allocation-free variant: identical bytes, reused capacity.
void BM_SaveStateInto(benchmark::State& state) {
  auto m = games::make_machine("duel");
  for (int i = 0; i < 60; ++i) m->step_frame(0x0404);
  std::vector<std::uint8_t> scratch;
  for (auto _ : state) {
    m->save_state_into(scratch);
    benchmark::DoNotOptimize(scratch.data());
  }
}
BENCHMARK(BM_SaveStateInto);

void BM_LoadState(benchmark::State& state) {
  auto m = games::make_machine("duel");
  for (int i = 0; i < 60; ++i) m->step_frame(0x0404);
  const auto snap = m->save_state();
  for (auto _ : state) benchmark::DoNotOptimize(m->load_state(snap));
}
BENCHMARK(BM_LoadState);

void BM_AssemblePong(benchmark::State& state) {
  // Re-assembling the ROM source measures the toolchain, not the cache.
  const std::string source = R"asm(
.equ FB, 0xA000
.entry main
main:
    LDI r0, FB
    LDI r1, 3072
loop:
    LDI r2, 1
    STB r0, r2
    ADDI r0, 1
    SUBI r1, 1
    JNZ loop
    HALT
    JMP main
)asm";
  for (auto _ : state) {
    auto result = emu::assemble(source, "bench");
    if (!result.ok()) state.SkipWithError("assembly failed");
    benchmark::DoNotOptimize(result.rom.image.data());
  }
}
BENCHMARK(BM_AssemblePong);

// ---- hand-rolled JSON mode --------------------------------------------------

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A deliberately sparse workload: one RAM byte written per frame, so the
/// v2 digest has exactly one dirty page to rehash. This is the far end of
/// the sparseness spectrum real games sit on (duel is the other point).
std::unique_ptr<emu::ArcadeMachine> make_sparse_machine() {
  const std::string source = R"asm(
.entry main
main:
    LDI r0, 0x8100
    LDI r1, 0
tick:
    ADDI r1, 1
    STB r0, r1
    HALT
    JMP tick
)asm";
  auto result = emu::assemble(source, "sparse");
  if (!result.ok()) return nullptr;
  return std::make_unique<emu::ArcadeMachine>(result.rom);
}

struct DigestPoint {
  std::string scenario;
  double step_ns = 0;
  double digest_v1_ns = 0;
  double digest_v2_ns = 0;
  double speedup = 0;
  double save_state_ns = 0;
  double save_state_into_ns = 0;
};

/// Mean ns of `digest(version)` measured across `frames` freshly-stepped
/// frames (one digest per step, like the drivers do).
double time_digest(emu::ArcadeMachine& m, int version, int frames) {
  std::int64_t total = 0;
  for (int i = 0; i < frames; ++i) {
    m.step_frame(0x0404);
    const std::int64_t t0 = now_ns();
    benchmark::DoNotOptimize(m.state_digest(version));
    total += now_ns() - t0;
  }
  return static_cast<double>(total) / frames;
}

DigestPoint measure_scenario(const std::string& name, emu::ArcadeMachine& m) {
  constexpr int kWarm = 60;
  constexpr int kFrames = 4000;
  DigestPoint p;
  p.scenario = name;
  for (int i = 0; i < kWarm; ++i) m.step_frame(0x0404);

  {
    const std::int64_t t0 = now_ns();
    for (int i = 0; i < kFrames; ++i) m.step_frame(0x0404);
    p.step_ns = static_cast<double>(now_ns() - t0) / kFrames;
  }
  p.digest_v1_ns = time_digest(m, 1, kFrames);
  p.digest_v2_ns = time_digest(m, 2, kFrames);
  p.speedup = p.digest_v1_ns / p.digest_v2_ns;

  constexpr int kSnaps = 2000;
  {
    const std::int64_t t0 = now_ns();
    for (int i = 0; i < kSnaps; ++i) benchmark::DoNotOptimize(m.save_state());
    p.save_state_ns = static_cast<double>(now_ns() - t0) / kSnaps;
  }
  {
    std::vector<std::uint8_t> scratch;
    const std::int64_t t0 = now_ns();
    for (int i = 0; i < kSnaps; ++i) {
      m.save_state_into(scratch);
      benchmark::DoNotOptimize(scratch.data());
    }
    p.save_state_into_ns = static_cast<double>(now_ns() - t0) / kSnaps;
  }
  return p;
}

int run_json_mode(const std::string& path) {
  std::vector<DigestPoint> points;

  auto sparse = make_sparse_machine();
  if (!sparse) {
    std::printf("FAILED to assemble the sparse scenario ROM\n");
    return 1;
  }
  points.push_back(measure_scenario("sparse", *sparse));
  auto duel = games::make_machine("duel");
  points.push_back(measure_scenario("duel", *duel));

  std::printf("=== EMU-PERF: state digest + snapshot costs ===\n\n");
  std::printf("%-10s %12s %12s %12s %9s %14s %18s\n", "scenario", "step ns",
              "digest v1 ns", "digest v2 ns", "speedup", "save_state ns",
              "save_state_into ns");
  for (const auto& p : points) {
    std::printf("%-10s %12.0f %12.0f %12.0f %8.1fx %14.0f %18.0f\n", p.scenario.c_str(),
                p.step_ns, p.digest_v1_ns, p.digest_v2_ns, p.speedup, p.save_state_ns,
                p.save_state_into_ns);
  }

  JsonWriter w;
  w.begin_object();
  w.key("schema").value("rtct.bench.v1");
  w.key("name").value("emu_perf");
  w.key("meta").begin_object();
  w.key("scenarios").value("sparse,duel");
  w.key("digest_page_bytes").value(static_cast<std::uint64_t>(emu::kPageSize));
  w.end_object();
  w.key("series").begin_object();
  auto series = [&w, &points](const char* key, auto proj) {
    w.key(key).begin_array();
    for (const auto& p : points) w.value(proj(p));
    w.end_array();
  };
  series("scenario_index",
         [&points](const DigestPoint& p) {
           return static_cast<std::uint64_t>(&p - points.data());
         });
  series("step_ns", [](const DigestPoint& p) { return p.step_ns; });
  series("digest_v1_ns", [](const DigestPoint& p) { return p.digest_v1_ns; });
  series("digest_v2_ns", [](const DigestPoint& p) { return p.digest_v2_ns; });
  series("digest_speedup", [](const DigestPoint& p) { return p.speedup; });
  series("save_state_ns", [](const DigestPoint& p) { return p.save_state_ns; });
  series("save_state_into_ns",
         [](const DigestPoint& p) { return p.save_state_into_ns; });
  w.end_object();
  w.end_object();

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::printf("FAILED to write %s\n", path.c_str());
    return 1;
  }
  out << w.take() << '\n';
  std::printf("\nwrote %s\n", path.c_str());

  // The acceptance gate: an incremental digest that is not clearly faster
  // than the full rehash on a sparse frame is a regression, fail loudly.
  const double sparse_speedup = points[0].speedup;
  std::printf("sparse-frame digest speedup (v1/v2): %.1fx (require >= 5x)\n",
              sparse_speedup);
  return sparse_speedup >= 5.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return run_json_mode(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
