// A-TCP — the §3.1 transport claim: "As a reliable transport, TCP solves
// those problems. However, it is problematic in satisfying the real time
// constraint. Therefore ... we resort to UDP and implement some of the
// reliability mechanisms in TCP."
//
// Head-to-head: the paper's scheme (UDP + cumulative-ack go-back-N inside
// the sync protocol, where every 20 ms flush redundantly re-sends the
// unacked input window) versus a TCP-like strictly-in-order stream (one
// lost segment head-of-line-blocks everything behind it until an RTO).
// Swept over loss rate x RTT; the UDP scheme should degrade gracefully
// while the TCP-like one stalls increasingly.
#include <cstdio>
#include <cstdlib>

#include "src/testbed/experiment.h"

int main(int argc, char** argv) {
  using namespace rtct;
  using namespace rtct::testbed;

  const int frames = argc > 1 ? std::atoi(argv[1]) : 900;

  std::printf("=== A-TCP: UDP+protocol-reliability vs TCP-like stream (%d frames) ===\n\n",
              frames);
  std::printf("%8s %7s | %9s %11s %10s | %9s %11s %10s\n", "RTT(ms)", "loss%", "udp:dev",
              "udp:stalls", "udp:sync", "tcp:dev", "tcp:stalls", "tcp:sync");
  std::printf("-----------------+---------------------------------+------------------------"
              "---------\n");

  for (int rtt_ms : {40, 80, 120}) {
    for (double loss_pct : {0.0, 0.5, 1.0, 2.0, 5.0}) {
      double dev[2], sync[2];
      std::size_t stalls[2];
      for (int t = 0; t < 2; ++t) {
        ExperimentConfig cfg;
        cfg.frames = frames;
        cfg.set_rtt(milliseconds(rtt_ms));
        cfg.net_a_to_b.loss = loss_pct / 100.0;
        cfg.net_b_to_a.loss = loss_pct / 100.0;
        cfg.transport = t == 0 ? ExperimentConfig::Transport::kUdp
                               : ExperimentConfig::Transport::kTcpLike;
        const auto r = run_experiment(cfg);
        dev[t] = std::max(r.frame_time_deviation_ms(0), r.frame_time_deviation_ms(1));
        sync[t] = r.synchrony_ms();
        stalls[t] =
            r.site[0].timeline.stalled_frames() + r.site[1].timeline.stalled_frames();
        if (!r.converged()) dev[t] = -1;  // flag inconsistency, should not happen
      }
      std::printf("%8d %7.1f | %9.3f %11zu %10.3f | %9.3f %11zu %10.3f\n", rtt_ms, loss_pct,
                  dev[0], stalls[0], sync[0], dev[1], stalls[1], sync[1]);
    }
    std::printf("-----------------+---------------------------------+----------------------"
                "-----------\n");
  }

  std::printf("\nExpected shape: at 0%% loss the transports tie; as loss grows the TCP-like\n"
              "stream's head-of-line blocking multiplies stalled frames and deviation,\n"
              "while the UDP scheme's redundant window resends absorb most losses without\n"
              "a single extra stall until loss is severe.\n");
  return 0;
}
