// T-BW — the §5 bandwidth claim: "the amount of [input] data is not
// excessive", and §4.2's trade-off between interactivity and "utilization
// of system resources (such as CPU and bandwidths)" that motivates the
// 20 ms send-buffer flush.
//
// Sweeps the flush period and reports messages/s, payload bytes/s, and the
// smoothness cost — quantifying the interactivity-vs-bandwidth knob.
#include <cstdio>
#include <cstdlib>

#include "src/testbed/experiment.h"

int main(int argc, char** argv) {
  using namespace rtct;
  using namespace rtct::testbed;

  const int frames = argc > 1 ? std::atoi(argv[1]) : 1800;
  const int rtt_ms = argc > 2 ? std::atoi(argv[2]) : 80;

  std::printf("=== T-BW: bandwidth vs send flush period (RTT %d ms, %d frames) ===\n\n",
              rtt_ms, frames);
  std::printf("%10s | %8s %10s %11s | %9s %9s\n", "flush(ms)", "msgs/s", "bytes/s",
              "inputs/msg", "dev(ms)", "sync(ms)");
  std::printf("-----------+----------------------------------+--------------------\n");

  for (int flush_ms : {5, 10, 20, 40, 80}) {
    ExperimentConfig cfg;
    cfg.frames = frames;
    cfg.set_rtt(milliseconds(rtt_ms));
    cfg.sync.send_flush_period = milliseconds(flush_ms);

    const auto r = run_experiment(cfg);
    // Wall time of the experiment = frames * avg frame time of site 0.
    const double duration_s = r.avg_frame_time_ms(0) * frames / 1000.0;
    const auto& tx = r.site[0].tx_stats;  // site 0's outgoing traffic
    const double msgs_per_s = static_cast<double>(tx.packets_offered) / duration_s;
    const double bytes_per_s = static_cast<double>(tx.bytes_offered) / duration_s;
    const double inputs_per_msg =
        static_cast<double>(r.site[0].sync_stats.inputs_sent) /
        static_cast<double>(r.site[0].sync_stats.messages_made);

    std::printf("%10d | %8.1f %10.0f %11.2f | %9.3f %9.3f\n", flush_ms, msgs_per_s,
                bytes_per_s, inputs_per_msg,
                std::max(r.frame_time_deviation_ms(0), r.frame_time_deviation_ms(1)),
                r.synchrony_ms());
  }

  std::printf("\nExpected shape: bytes/s stays in the low kilobytes regardless (the paper's\n"
              "'not excessive'); shrinking the flush period multiplies messages/s for a\n"
              "modest smoothness gain — the paper picked 20 ms as the balance point.\n");
  return 0;
}
