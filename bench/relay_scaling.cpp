// RELAY-SCALE — session-multiplexing relay scaling: one in-process
// RelayServer carrying 64 / 256 / 1024 concurrent sessions of synthetic
// two-member traffic from the chaos-modulated load generator
// (src/relay/load_gen.h).
//
// The load generator keys every session to the same two client sockets
// (the relay identifies sessions by connection id and members by source
// address), so the 1024-session point exercises a 1024-entry session
// table and real per-datagram shard dispatch without a thousand fds.
// Payloads carry steady-clock send stamps; the drain side turns arrivals
// into exact one-way relay latencies (same process, same clock).
//
// Usage: relay_scaling [rounds] [--json PATH]
// Emits "rtct.bench.v1" JSON (validated in CI by rtct_trace --check) and
// self-checks the acceptance criterion: the relay sustains >= 1000
// concurrent sessions with p99 one-way dispatch latency under a frame
// period (33 ms) and no datagrams lost on the loopback path.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/stats.h"
#include "src/common/telemetry.h"
#include "src/relay/load_gen.h"
#include "src/relay/relay_server.h"

// The latency gate is calibrated for an uninstrumented build; sanitizer
// interceptors roughly triple syscall-heavy paths, so the same workload
// gets a proportionally larger budget there (the delivery + session-count
// gates stay identical — correctness does not get a discount).
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define RTCT_BENCH_SANITIZED 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define RTCT_BENCH_SANITIZED 1
#endif

namespace {

using namespace rtct;

#if defined(RTCT_BENCH_SANITIZED)
constexpr double kP99BudgetMs = 100.0;
#else
constexpr double kP99BudgetMs = 33.0;
#endif

struct ScalePoint {
  int sessions = 0;
  std::uint64_t offered = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t delivered = 0;
  double delivery_ratio = 0;
  double latency_p50_ms = 0;
  double latency_p99_ms = 0;
  double latency_max_ms = 0;
  double dispatch_mean_us = 0;  ///< server-side peek+lookup+fanout, per datagram
  std::uint64_t forwarded = 0;
  std::uint64_t fanout = 0;
};

ScalePoint run_point(int sessions, int rounds, std::uint64_t seed) {
  ScalePoint p;
  p.sessions = sessions;

  relay::RelayConfig rc;
  rc.shards = 4;
  rc.max_sessions = 2048;
  rc.idle_timeout = seconds(120);  // nothing evicts mid-bench
  relay::RelayServer server(rc);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "relay start failed: %s\n", error.c_str());
    return p;
  }

  relay::LoadGenConfig lc;
  lc.lobby_port = server.lobby_port();
  lc.sessions = sessions;
  lc.rounds = rounds;
  lc.seed = seed;
  const relay::LoadGenReport r = relay::run_relay_load(lc);
  if (!r.ok) {
    std::fprintf(stderr, "load run failed at %d sessions: %s\n", sessions,
                 r.error.c_str());
    server.stop();
    return p;
  }

  p.sessions = r.sessions;
  p.offered = r.offered;
  p.suppressed = r.suppressed;
  p.delivered = r.delivered;
  p.delivery_ratio = r.delivery_ratio();
  const Summary lat = r.latency_ms.summarize();
  p.latency_p50_ms = lat.p50;
  p.latency_p99_ms = lat.p99;
  p.latency_max_ms = lat.max;

  MetricsRegistry reg;
  server.export_metrics(reg);
  const Histogram& dispatch = reg.histogram("relay.dispatch_ns");
  p.dispatch_mean_us = dispatch.mean() / 1e3;  // histogram is fed nanoseconds
  const relay::RelayServer::Stats s = server.stats();
  p.forwarded = s.datagrams_forwarded;
  p.fanout = s.fanout_datagrams;
  server.stop();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  int rounds = 40;  // CI-sized; each round offers 2 datagrams per session
  std::string json_path = "BENCH_relay_scaling.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      rounds = std::atoi(argv[i]);
    }
  }
  if (rounds <= 0) rounds = 40;

  const int counts[] = {64, 256, 1024};
  std::vector<ScalePoint> points;
  std::printf("=== RELAY-SCALE: multiplexed sessions on one relay (%d rounds) ===\n\n",
              rounds);
  std::printf("%9s %10s %11s %10s %9s %9s %9s %13s\n", "sessions", "offered",
              "delivered", "ratio", "p50 ms", "p99 ms", "max ms", "dispatch us");
  for (int n : counts) {
    points.push_back(run_point(n, rounds, 0xbe4cull + static_cast<std::uint64_t>(n)));
    const ScalePoint& p = points.back();
    std::printf("%9d %10llu %11llu %10.4f %9.3f %9.3f %9.3f %13.2f\n", p.sessions,
                static_cast<unsigned long long>(p.offered),
                static_cast<unsigned long long>(p.delivered), p.delivery_ratio,
                p.latency_p50_ms, p.latency_p99_ms, p.latency_max_ms,
                p.dispatch_mean_us);
  }

  JsonWriter w;
  w.begin_object();
  w.key("schema").value("rtct.bench.v1");
  w.key("name").value("relay_scaling");
  w.key("meta").begin_object();
  w.key("rounds").value(std::to_string(rounds));
  w.key("shards").value("4");
  w.key("faults").value("chaos FaultScript send schedule");
  w.end_object();
  w.key("series").begin_object();
  auto series = [&w, &points](const char* key, auto proj) {
    w.key(key).begin_array();
    for (const auto& p : points) w.value(proj(p));
    w.end_array();
  };
  series("sessions", [](const ScalePoint& p) {
    return static_cast<std::uint64_t>(p.sessions);
  });
  series("offered", [](const ScalePoint& p) { return p.offered; });
  series("suppressed", [](const ScalePoint& p) { return p.suppressed; });
  series("delivered", [](const ScalePoint& p) { return p.delivered; });
  series("delivery_ratio", [](const ScalePoint& p) { return p.delivery_ratio; });
  series("latency_p50_ms", [](const ScalePoint& p) { return p.latency_p50_ms; });
  series("latency_p99_ms", [](const ScalePoint& p) { return p.latency_p99_ms; });
  series("latency_max_ms", [](const ScalePoint& p) { return p.latency_max_ms; });
  series("dispatch_mean_us", [](const ScalePoint& p) { return p.dispatch_mean_us; });
  series("forwarded", [](const ScalePoint& p) { return p.forwarded; });
  series("fanout", [](const ScalePoint& p) { return p.fanout; });
  w.end_object();
  w.end_object();

  std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::printf("FAILED to write %s\n", json_path.c_str());
    return 1;
  }
  out << w.take() << '\n';
  std::printf("\nwrote %s\n", json_path.c_str());

  // Acceptance gate (EXPERIMENTS.md RELAY-SCALE): the big point must hold
  // >= 1000 concurrent sessions, keep p99 one-way relay latency under one
  // 30 fps frame period, and deliver everything that was actually offered
  // (suppression is client-side and does not count against the relay).
  const ScalePoint& big = points.back();
  const bool enough_sessions = big.sessions >= 1000;
  const bool fast_enough = big.delivered > 0 && big.latency_p99_ms < kP99BudgetMs;
  const bool lossless = big.delivery_ratio >= 0.999;
  std::printf("gate: %d sessions (>=1000), p99 %.3f ms (<%.0f), ratio %.4f (>=0.999)\n",
              big.sessions, big.latency_p99_ms, kP99BudgetMs, big.delivery_ratio);
  if (!enough_sessions) std::printf("FAIL: relay did not establish 1000 sessions\n");
  if (!fast_enough) std::printf("FAIL: p99 relay latency breached a frame period\n");
  if (!lossless) std::printf("FAIL: relay lost offered datagrams on loopback\n");
  return (enough_sessions && fast_enough && lossless) ? 0 : 1;
}
