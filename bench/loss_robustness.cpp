// A-LOSS — behaviour under packet loss (teased for the journal version in
// §6: "how the system performs in presence of packet losses").
//
// Fixed RTT, loss swept 0→20%: reports smoothness, synchrony, stall
// counts, retransmission volume and duplicate-delivery counts — and
// verifies that logical consistency NEVER breaks, whatever the loss rate
// (the protocol may only ever get slower, never wrong).
#include <cstdio>
#include <cstdlib>

#include "src/testbed/experiment.h"

int main(int argc, char** argv) {
  using namespace rtct;
  using namespace rtct::testbed;

  const int frames = argc > 1 ? std::atoi(argv[1]) : 900;
  const int rtt_ms = argc > 2 ? std::atoi(argv[2]) : 80;

  std::printf("=== A-LOSS: loss sweep at RTT %d ms (%d frames) ===\n\n", rtt_ms, frames);
  std::printf("%7s | %9s %9s %8s | %12s %12s | %s\n", "loss%", "dev(ms)", "sync(ms)", "stalls",
              "retransmits", "dups-rcvd", "consistent");
  std::printf("--------+------------------------------+---------------------------+----------"
              "-\n");

  bool all_consistent = true;
  for (double loss_pct : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
    ExperimentConfig cfg;
    cfg.frames = frames;
    cfg.set_rtt(milliseconds(rtt_ms));
    cfg.net_a_to_b.loss = loss_pct / 100.0;
    cfg.net_b_to_a.loss = loss_pct / 100.0;
    // Add mild duplication+reorder as well: real lossy paths rarely only drop.
    cfg.net_a_to_b.duplicate = loss_pct / 400.0;
    cfg.net_b_to_a.duplicate = loss_pct / 400.0;
    cfg.net_a_to_b.reorder = loss_pct / 200.0;
    cfg.net_a_to_b.reorder_extra = milliseconds(5);
    cfg.net_b_to_a.reorder = loss_pct / 200.0;
    cfg.net_b_to_a.reorder_extra = milliseconds(5);

    const auto r = run_experiment(cfg);
    const auto& s0 = r.site[0].sync_stats;
    const auto& s1 = r.site[1].sync_stats;
    all_consistent = all_consistent && r.converged();
    std::printf("%7.1f | %9.3f %9.3f %8zu | %12llu %12llu | %s\n", loss_pct,
                std::max(r.frame_time_deviation_ms(0), r.frame_time_deviation_ms(1)),
                r.synchrony_ms(),
                r.site[0].timeline.stalled_frames() + r.site[1].timeline.stalled_frames(),
                static_cast<unsigned long long>(s0.inputs_retransmitted +
                                                s1.inputs_retransmitted),
                static_cast<unsigned long long>(s0.duplicate_inputs_rcvd +
                                                s1.duplicate_inputs_rcvd),
                r.converged() ? "yes" : "NO");
  }

  std::printf("\nlogical consistency preserved at every loss rate: %s\n",
              all_consistent ? "yes" : "NO");
  return all_consistent ? 0 : 1;
}
