// ROLLBACK-LAT — perceived input latency and frame-time smoothness,
// lockstep vs rollback, across RTT (the argument for the second
// consistency mode, measured).
//
// Both modes run the same virtual-clock two-site experiment on the same
// game and frame count per RTT point:
//
//   * lockstep uses the strongest configuration the repo has — v2
//     adaptive lag, which sizes BufFrame from the handshake-measured RTT
//     (ceil(RTT/2 / period) + margin). Its perceived input latency is
//     BufFrame * period, i.e. it GROWS with RTT by design: that is what
//     keeps Algorithm 2 from stalling.
//   * rollback holds the local input exactly `rollback_input_delay`
//     frames no matter the RTT — the network only moves the *confirmation*
//     watermark, not the frame clock — so perceived latency is flat and
//     mispredictions are paid as invisible restore + re-simulate work.
//
// Acceptance criteria (self-checked; nonzero exit on failure):
//   * every run at every RTT converges (byte-identical confirmed digests);
//   * at RTT >= 100 ms rollback's perceived input latency is strictly
//     lower than lockstep's;
//   * rollback's frame-time deviation stays within 2x lockstep's
//     (+0.25 ms epsilon for the near-zero regime).
//
// Usage: rollback_latency [frames] [--json PATH]
// Emits "rtct.bench.v1" JSON (validated in CI by rtct_trace --check);
// committed reference: bench/baselines/BENCH_rollback_latency.json.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/games/cellwars.h"
#include "src/testbed/experiment.h"

namespace {

using namespace rtct;
using namespace rtct::testbed;

struct ModeResult {
  double latency_ms = 0;  ///< perceived input latency: delay-frames * period
  double avg_ft_ms = 0;   ///< worst site's average frame time
  double dev_ms = 0;      ///< worst site's frame-time deviation
  bool converged = false;
  std::uint64_t rollbacks = 0;
  std::uint64_t mispredicted = 0;
};

ModeResult run_mode(ExperimentConfig cfg, Dur rtt, bool rollback) {
  if (rollback) {
    cfg.sync.rollback = true;
  } else {
    cfg.sync.adaptive_lag = true;
  }
  cfg.set_rtt(rtt);
  const ExperimentResult r = run_experiment(cfg);
  ModeResult m;
  const double period_ms = 1000.0 / cfg.sync.cfps;
  m.latency_ms = r.site[0].buf_frames * period_ms;
  m.avg_ft_ms = std::max(r.avg_frame_time_ms(0), r.avg_frame_time_ms(1));
  m.dev_ms = std::max(r.frame_time_deviation_ms(0), r.frame_time_deviation_ms(1));
  m.converged = r.converged() && r.site[0].rollback_mode == rollback &&
                r.site[1].rollback_mode == rollback;
  m.rollbacks = r.site[0].rollback_stats.rollbacks;
  m.mispredicted = r.site[0].rollback_stats.mispredicted_frames;
  return m;
}

struct Point {
  double rtt_ms = 0;
  ModeResult lockstep;
  ModeResult rollback;
};

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig base;
  base.game = "cellwars";
  base.game_factory = games::make_cellwars;
  base.frames = 600;
  std::string json_path = "BENCH_rollback_latency.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      base.frames = std::atoi(argv[i]);
    }
  }

  std::printf("=== ROLLBACK-LAT: perceived input latency, lockstep vs rollback "
              "(%d frames/point) ===\n\n",
              base.frames);
  std::printf("%8s | %12s %12s | %10s %10s | %10s %10s | %9s\n", "RTT(ms)",
              "ls lat(ms)", "rb lat(ms)", "ls dev", "rb dev", "ls avgFT", "rb avgFT",
              "rollbacks");
  std::printf("---------+---------------------------+-----------------------+"
              "-----------------------+----------\n");

  std::vector<Point> points;
  for (const int rtt_ms : {25, 50, 100, 150, 200}) {
    Point p;
    p.rtt_ms = rtt_ms;
    p.lockstep = run_mode(base, milliseconds(rtt_ms), /*rollback=*/false);
    p.rollback = run_mode(base, milliseconds(rtt_ms), /*rollback=*/true);
    std::printf("%8d | %12.1f %12.1f | %10.3f %10.3f | %10.3f %10.3f | %9llu\n", rtt_ms,
                p.lockstep.latency_ms, p.rollback.latency_ms, p.lockstep.dev_ms,
                p.rollback.dev_ms, p.lockstep.avg_ft_ms, p.rollback.avg_ft_ms,
                static_cast<unsigned long long>(p.rollback.rollbacks));
    points.push_back(p);
  }

  // ---- acceptance criteria ---------------------------------------------------
  bool ok = true;
  for (const Point& p : points) {
    if (!p.lockstep.converged || !p.rollback.converged) {
      std::printf("FAIL: RTT %.0f ms did not converge (lockstep %s, rollback %s)\n",
                  p.rtt_ms, p.lockstep.converged ? "ok" : "DIVERGED",
                  p.rollback.converged ? "ok" : "DIVERGED");
      ok = false;
    }
    if (p.rtt_ms < 100) continue;
    if (p.rollback.latency_ms >= p.lockstep.latency_ms) {
      std::printf("FAIL: RTT %.0f ms: rollback latency %.1f ms not below lockstep's "
                  "%.1f ms\n",
                  p.rtt_ms, p.rollback.latency_ms, p.lockstep.latency_ms);
      ok = false;
    }
    if (p.rollback.dev_ms > 2.0 * p.lockstep.dev_ms + 0.25) {
      std::printf("FAIL: RTT %.0f ms: rollback deviation %.3f ms exceeds 2x lockstep "
                  "(%.3f ms) + 0.25\n",
                  p.rtt_ms, p.rollback.dev_ms, p.lockstep.dev_ms);
      ok = false;
    }
  }
  std::printf("\nacceptance (latency below lockstep at RTT >= 100 ms, deviation within "
              "2x): %s\n",
              ok ? "PASS" : "FAIL");

  if (!json_path.empty()) {
    JsonWriter w;
    w.begin_object();
    w.key("schema").value("rtct.bench.v1");
    w.key("name").value("rollback_latency");
    w.key("meta").begin_object();
    w.key("game").value(base.game);
    w.key("frames").value(std::to_string(base.frames));
    w.key("rollback_input_delay").value(std::to_string(base.sync.rollback_input_delay));
    w.end_object();
    w.key("series").begin_object();
    auto series = [&w, &points](const char* key, auto proj) {
      w.key(key).begin_array();
      for (const auto& p : points) w.value(proj(p));
      w.end_array();
    };
    series("rtt_ms", [](const Point& p) { return p.rtt_ms; });
    series("lockstep_latency_ms", [](const Point& p) { return p.lockstep.latency_ms; });
    series("rollback_latency_ms", [](const Point& p) { return p.rollback.latency_ms; });
    series("lockstep_dev_ms", [](const Point& p) { return p.lockstep.dev_ms; });
    series("rollback_dev_ms", [](const Point& p) { return p.rollback.dev_ms; });
    series("lockstep_avg_ft_ms", [](const Point& p) { return p.lockstep.avg_ft_ms; });
    series("rollback_avg_ft_ms", [](const Point& p) { return p.rollback.avg_ft_ms; });
    series("rollbacks", [](const Point& p) { return p.rollback.rollbacks; });
    series("mispredicted_frames", [](const Point& p) { return p.rollback.mispredicted; });
    series("converged", [](const Point& p) {
      return static_cast<std::uint64_t>(p.lockstep.converged && p.rollback.converged);
    });
    w.end_object();
    w.end_object();
    std::ofstream out(json_path, std::ios::binary);
    out << w.str() << "\n";
    if (out.good()) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::printf("FAILED to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return ok ? 0 : 1;
}
