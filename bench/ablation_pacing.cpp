// A-PACER — ablation of Algorithm 4 (master/slave rate sync), §3.2.
//
// Paper claim: with only EndFrameTiming's compensation (Algorithm 3), "the
// site that starts earlier is always penalized ... The earlier site will
// suffer from considerable speed fluctuation"; Algorithm 4 instead makes
// the slave absorb the startup deviation "within only a few frames" and
// "no site will be penalized".
//
// Setup: the handshake makes the master start ~ one one-way delay earlier
// than the slave, so larger RTT = larger startup skew. We compare
// PacingPolicy::kFull (Algorithms 3+4) against kCompensateOnly (3 only)
// and kNaive (plain waiting), reporting each site's frame-time deviation
// and the residual inter-site skew.
#include <cstdio>
#include <cstdlib>

#include "src/testbed/experiment.h"

int main(int argc, char** argv) {
  using namespace rtct;
  using namespace rtct::testbed;
  using core::PacingPolicy;

  const int frames = argc > 1 ? std::atoi(argv[1]) : 1200;

  struct Named {
    PacingPolicy policy;
    const char* name;
  };
  const Named policies[] = {{PacingPolicy::kFull, "alg3+alg4 (paper)"},
                            {PacingPolicy::kCompensateOnly, "alg3 only"},
                            {PacingPolicy::kNaive, "naive waiting"}};

  std::printf("=== A-PACER: pacing-policy ablation (%d frames) ===\n\n", frames);
  std::printf("%8s | %-18s | %10s | %11s %11s | %10s | %8s\n", "RTT(ms)", "policy",
              "avgFT0(ms)", "devFT0(ms)", "devFT1(ms)", "sync(ms)", "stalls0");
  std::printf("---------+--------------------+------------+-------------------------+"
              "------------+--------\n");

  for (int rtt_ms : {40, 80, 120}) {
    for (const auto& p : policies) {
      ExperimentConfig cfg;
      cfg.frames = frames;
      cfg.set_rtt(milliseconds(rtt_ms));
      cfg.pacing[0] = p.policy;
      cfg.pacing[1] = p.policy;

      const auto r = run_experiment(cfg);
      std::printf("%8d | %-18s | %10.3f | %11.3f %11.3f | %10.3f | %7zu\n", rtt_ms, p.name,
                  r.avg_frame_time_ms(0), r.frame_time_deviation_ms(0),
                  r.frame_time_deviation_ms(1), r.synchrony_ms(),
                  r.site[0].timeline.stalled_frames());
    }
    std::printf("---------+--------------------+------------+-------------------------+"
                "------------+--------\n");
  }

  std::printf("\nExpected shape: without Algorithm 4 the startup skew persists forever\n"
              "(sync column stays at ~ the staggered start), the earlier site stalls in\n"
              "SyncInput every frame, and either fluctuates (alg3-only: compensation\n"
              "fights the stalls — the paper's 'considerable speed fluctuation') or runs\n"
              "visibly slower than CFPS (naive waiting). With Algorithm 4 the slave\n"
              "absorbs the skew within a few frames and both sites stay smooth at 60 FPS.\n");
  return 0;
}
