// FIG2 — reproduces Figure 2, "Synchrony between two sites" (§4.1.2).
//
// Paper protocol: same RTT sweep as Figure 1; each site reports every
// frame's begin time to a LAN time server; the metric is the absolute
// average of the per-frame time differences between the two sites (their
// footnote 11). In simulation the time server is the exact global virtual
// clock, removing the paper's sub-millisecond LAN measurement error.
//
// Paper findings to reproduce in shape: < 10 ms for RTT up to ~130 ms,
// ~15 ms at the threshold, rising quickly beyond it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/testbed/sweep.h"

int main(int argc, char** argv) {
  using namespace rtct;
  using namespace rtct::testbed;

  ExperimentConfig base;
  base.game = "duel";
  std::string json_path = "BENCH_fig2_synchrony.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      base.frames = std::atoi(argv[i]);
    }
  }

  std::printf("=== FIG2: inter-site synchrony vs RTT (%d frames/point) ===\n\n", base.frames);
  std::printf("%8s | %14s %14s %14s | %s\n", "RTT(ms)", "sync-avg(ms)", "sync-p95(ms)",
              "sync-max(ms)", "consistent");
  std::printf("---------+----------------------------------------------+-----------\n");

  const auto points = sweep_rtt(base, paper_rtt_sweep());
  double below_threshold_max = 0;
  for (const auto& p : points) {
    const auto s = core::synchrony_differences(p.result.site[0].timeline,
                                               p.result.site[1].timeline)
                       .summarize();
    // Footnote 11's absolute average is s.mean_abs; we add spread columns.
    const double abs_p95 = std::max(std::abs(s.p95), std::abs(s.p50));
    std::printf("%8.0f | %14.3f %14.3f %14.3f | %s\n", to_ms(p.rtt), s.mean_abs, abs_p95,
                std::max(std::abs(s.min), std::abs(s.max)),
                p.result.converged() ? "yes" : "NO");
    if (p.rtt <= milliseconds(130)) {
      below_threshold_max = std::max(below_threshold_max, s.mean_abs);
    }
  }

  std::printf("\nlargest average synchrony deviation at RTT <= 130 ms: %.3f ms "
              "(paper: < 10 ms)\n",
              below_threshold_max);

  // Rollback-mode series: sites free-run at the frame period instead of
  // pacing against each other, so synchrony reflects only the handshake
  // skew plus pacer smoothing — it should stay flat across the sweep.
  std::printf("\n--- rollback mode ---\n");
  std::printf("%8s | %14s %14s %14s | %s\n", "RTT(ms)", "sync-avg(ms)", "sync-p95(ms)",
              "sync-max(ms)", "consistent");
  ExperimentConfig rb_base = base;
  rb_base.sync.rollback = true;
  const auto rb_points = sweep_rtt(rb_base, paper_rtt_sweep());
  for (const auto& p : rb_points) {
    const auto s = core::synchrony_differences(p.result.site[0].timeline,
                                               p.result.site[1].timeline)
                       .summarize();
    const double abs_p95 = std::max(std::abs(s.p95), std::abs(s.p50));
    std::printf("%8.0f | %14.3f %14.3f %14.3f | %s\n", to_ms(p.rtt), s.mean_abs, abs_p95,
                std::max(std::abs(s.min), std::abs(s.max)),
                p.result.converged() ? "yes" : "NO");
  }

  if (!json_path.empty()) {
    const std::map<std::string, std::string> meta = {
        {"game", base.game}, {"frames", std::to_string(base.frames)}};
    if (write_bench_json(json_path, "fig2_synchrony", points, base.sync.cfps, meta)) {
      std::printf("wrote %s\n", json_path.c_str());
    } else {
      std::printf("FAILED to write %s\n", json_path.c_str());
      return 1;
    }
    std::string rb_path = json_path;
    const auto dot = rb_path.rfind(".json");
    rb_path.insert(dot == std::string::npos ? rb_path.size() : dot, "_rollback");
    std::map<std::string, std::string> rb_meta = meta;
    rb_meta["mode"] = "rollback";
    if (write_bench_json(rb_path, "fig2_synchrony_rollback", rb_points,
                         rb_base.sync.cfps, rb_meta)) {
      std::printf("wrote %s\n", rb_path.c_str());
    } else {
      std::printf("FAILED to write %s\n", rb_path.c_str());
      return 1;
    }
  }
  return 0;
}
