// SYNC_SWEEP — the CI-sized observability sweep: runs the quick RTT grid
// and emits BENCH_sync_sweep.json ("rtct.bench.v1"), which ctest then
// validates with `rtct_trace --check`. This keeps the metrics-export path
// exercised end to end on every test run — a schema regression or an
// experiment that stops converging fails CI, not a later plotting session.
//
// Usage: sync_sweep [frames] [--json PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/testbed/sweep.h"

int main(int argc, char** argv) {
  using namespace rtct;
  using namespace rtct::testbed;

  ExperimentConfig base;
  base.game = "duel";
  base.frames = 600;  // CI-sized; pass 3600 for paper-length points
  std::string json_path = "BENCH_sync_sweep.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      base.frames = std::atoi(argv[i]);
    }
  }

  std::printf("=== SYNC_SWEEP: quick RTT grid (%d frames/point) ===\n\n", base.frames);
  const auto points = sweep_rtt(base, quick_rtt_sweep());
  print_paper_table(points);

  const Dur threshold = find_threshold_rtt(points, base.sync.cfps);
  std::printf("\nfull-speed threshold RTT: %.0f ms\n", to_ms(threshold));

  bool all_consistent = true;
  for (const auto& p : points) all_consistent = all_consistent && p.result.converged();

  const std::map<std::string, std::string> meta = {
      {"game", base.game},
      {"frames", std::to_string(base.frames)},
      {"grid", "quick_rtt_sweep"}};
  if (!write_bench_json(json_path, "sync_sweep", points, base.sync.cfps, meta)) {
    std::printf("FAILED to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  std::printf("logical consistency at every RTT: %s\n", all_consistent ? "yes" : "NO");
  return all_consistent ? 0 : 1;
}
