; starfield.asm — sample ROM shipped with rtct, demonstrating the AC16
; toolchain end to end:
;
;   ./build/tools/rtct_asm assets/starfield.asm -o starfield.rom --listing
;   ./build/tools/rtct_play starfield.rom
;   ./build/tools/rtct_netplay --site 0 --rom starfield.rom ...
;
; Two players steer a shared "warp speed" starfield: player 0's Up/Down
; sets the scroll speed (0..7), player 1's buttons recolour the stars.
; A deterministic LCG seeded from ROM data places the stars.

.equ STATE,  0x8000
.equ FB,     0xA000
.equ SEED,   0          ; word offsets in STATE
.equ SPEED,  2
.equ TICK,   4

.entry main
main:
    LDI r14, STATE
    LDW r0, r14, SEED       ; first frame: seed from ROM constant
    CMPI r0, 0
    JNZ frame
    LDW r0, r14, 0          ; (re)load — stays 0
    LDI r0, init_seed
    LDW r1, r0              ; fetch the seed word from ROM data
    STW r14, r1, SEED
    LDI r1, 3
    STW r14, r1, SPEED

frame:
    ; player 0 adjusts speed with Up/Down
    IN  r0, 0
    LDW r1, r14, SPEED
    MOV r2, r0
    ANDI r2, 1              ; Up: faster
    JZ  no_up
    CMPI r1, 7
    JZ  no_up
    ADDI r1, 1
no_up:
    MOV r2, r0
    ANDI r2, 2              ; Down: slower
    JZ  no_down
    CMPI r1, 0
    JZ  no_down
    SUBI r1, 1
no_down:
    STW r14, r1, SPEED

    ; advance the field `speed` ticks per frame
    LDW r2, r14, TICK
    ADD r2, r1
    STW r14, r2, TICK

    ; player 1 picks the star colour (1..8)
    IN  r3, 1
    ANDI r3, 7
    ADDI r3, 1

    ; clear
    LDI r4, FB
    LDI r5, 3072
    LDI r6, 0
clear:
    STB r4, r6
    ADDI r4, 1
    SUBI r5, 1
    JNZ clear

    ; draw 48 stars from the LCG, scrolled horizontally by TICK
    LDW r5, r14, SEED
    LDI r7, 48
stars:
    MULI r5, 25173
    ADDI r5, 13849
    MOV r8, r5              ; x = (rand + tick) & 63
    SHRI r8, 4
    ADD r8, r2
    ANDI r8, 63
    MOV r9, r5              ; y = rand & 47 clipped
    ANDI r9, 63
    CMPI r9, 48
    JC  y_ok
    SUBI r9, 16
y_ok:
    SHLI r9, 6
    ADD r9, r8
    ADDI r9, FB
    STB r9, r3
    SUBI r7, 1
    JNZ stars

    OUT 4, r1               ; hum at the warp speed
    HALT
    JMP frame

init_seed:
.word 0xBEEF
